//! Plain-text trace serialization.
//!
//! Traces are written in a sectioned CSV dialect so that generated
//! workloads can be persisted, diffed, and re-analyzed without re-running
//! the simulator. The format is deliberately simple — one section header
//! per record type, one record per line — and round-trips exactly (modulo
//! float formatting, which uses enough digits to be lossless).
//!
//! ```text
//! #trace <system> <horizon>
//! #machines
//! <id>,<cpu>,<mem>,<page_cache>
//! #jobs
//! <id>,<user>,<priority>,<submit>,<completion|->,<cpu_seconds>,<mean_memory>
//! #tasks
//! <id>,<job>,<priority>,<submit>,<cpu>,<mem>,<exec>,<attempts>,<resubmit_wait>,<outcome>
//! #events
//! <time>,<task>,<machine|->,<kind>
//! #series <machine> <start> <period>
//! <cpu_l>,<cpu_m>,<cpu_h>,<mu_l>,...,<page_cache>
//! ```
//!
//! Task lines with nine fields (the format before `resubmit_wait` was
//! recorded) are still accepted, with the wait defaulting to zero.
//!
//! # Robustness
//!
//! [`read_trace`] is *strict*: the first malformed line aborts the parse
//! with a [`ParseError`] carrying the offending line number. No input —
//! however corrupt — makes it panic. Beyond per-line syntax it validates
//! structural invariants that downstream consumers rely on: record ids are
//! dense and in file order, tasks reference declared jobs, events reference
//! declared tasks and replay legally through the task life-cycle state
//! machine, and usage series reference declared machines. A trace returned
//! by `read_trace` is therefore safe to hand to any analyzer.
//!
//! [`read_trace_lenient`] degrades gracefully instead of aborting: corrupt
//! lines are skipped and reported as warnings (one [`ParseError`] per
//! skipped line), so a partially corrupted or truncated trace still yields
//! every salvageable record. Analyzers then operate on the partial trace.
//!
//! # Integrity trailer
//!
//! [`write_trace_sealed`] appends a self-verification trailer:
//!
//! ```text
//! #integrity v1 machines=M jobs=J tasks=T events=E samples=S crc=XXXXXXXX
//! ```
//!
//! where the counts are per-section record totals and the CRC is IEEE
//! CRC-32 over every preceding non-blank line (trimmed, `\n`-terminated, so
//! the checksum is independent of line endings and trailing whitespace).
//! Every reader verifies the trailer when present: strict mode reports a
//! mismatch as a [`ParseError`] with [`ParseErrorKind::Integrity`], lenient
//! mode records it as a warning and keeps the salvaged records. Traces
//! without a trailer (the pre-sealing format, and [`write_trace`] output)
//! are accepted unchanged; [`read_trace_verified`] additionally *requires*
//! the trailer, turning silent truncation into a typed error.

use crate::ids::{JobId, MachineId, TaskId, UserId};
use crate::integrity::Crc32;
use crate::job::JobRecord;
use crate::machine::MachineRecord;
use crate::priority::Priority;
use crate::resources::Demand;
use crate::task::{TaskEvent, TaskEventKind, TaskOutcome, TaskRecord, TaskState};
use crate::trace::Trace;
use crate::usage::{ClassSplit, HostSeries, UsageSample};
use std::fmt::Write as _;
use std::str::FromStr;

/// What class of failure a [`ParseError`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// A malformed line or a violated structural invariant.
    Syntax,
    /// The `#integrity` trailer failed verification (checksum or record
    /// counts disagree with the content, data follows the trailer, or a
    /// required trailer is missing).
    Integrity,
    /// The underlying reader failed mid-stream.
    Io,
}

/// Error produced while parsing a serialized trace.
///
/// In lenient mode the same type describes a *warning*: a line that was
/// skipped instead of aborting the parse.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
    /// Failure class, for callers that treat corruption differently from
    /// plain syntax trouble (exit codes, metrics).
    pub kind: ParseErrorKind,
}

impl ParseError {
    pub(crate) fn syntax(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
            kind: ParseErrorKind::Syntax,
        }
    }

    pub(crate) fn integrity(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
            kind: ParseErrorKind::Integrity,
        }
    }

    pub(crate) fn io(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
            kind: ParseErrorKind::Io,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Result of a lenient parse: the salvaged trace plus one warning per
/// skipped line.
#[derive(Debug, Clone, PartialEq)]
pub struct LenientParse {
    /// The records that parsed cleanly.
    pub trace: Trace,
    /// Skipped lines, in file order.
    pub warnings: Vec<ParseError>,
    /// Non-blank input lines seen, the denominator for
    /// [`salvage_percent`](LenientParse::salvage_percent).
    pub lines_seen: u64,
}

impl LenientParse {
    /// Packages the warnings as structured [`Diagnostics`] labelled with
    /// the input's source (a path, `<stdin>`, a synthetic name), ready
    /// for the one-line summary or per-category table renderings.
    pub fn diagnostics(&self, source: impl Into<String>) -> cgc_obs::Diagnostics {
        let mut d = cgc_obs::Diagnostics::new(source);
        for w in &self.warnings {
            d.record(w.line, w.message.clone());
        }
        d
    }

    /// Share of non-blank input lines that were skipped, in percent
    /// (0.0–100.0). Drives `--max-salvage` fail-fast thresholds: a
    /// mostly-corrupt trace should abort rather than quietly skew a
    /// report.
    pub fn salvage_percent(&self) -> f64 {
        if self.lines_seen == 0 {
            0.0
        } else {
            100.0 * self.warnings.len() as f64 / self.lines_seen as f64
        }
    }
}

/// Batches ingest counter updates and flushes them to the global metrics
/// registry on drop, so strict-mode early aborts still account for the
/// work done up to the offending line.
///
/// `salvaged` is tallied here too — by the shared line loops, exactly
/// once per line a lenient sink swallowed — so no entry point needs a
/// post-hoc `lines_salvaged.add(...)` that could double-count what the
/// sink already recorded.
pub(crate) struct IngestTally {
    pub(crate) lines: u64,
    pub(crate) bytes: u64,
    pub(crate) salvaged: u64,
}

impl IngestTally {
    pub(crate) fn new() -> Self {
        IngestTally {
            lines: 0,
            bytes: 0,
            salvaged: 0,
        }
    }
}

impl Drop for IngestTally {
    fn drop(&mut self) {
        let m = cgc_obs::metrics();
        m.lines_parsed.add(self.lines);
        m.bytes_read.add(self.bytes);
        m.lines_salvaged.add(self.salvaged);
    }
}

fn outcome_tag(o: TaskOutcome) -> &'static str {
    match o {
        TaskOutcome::Finished => "finished",
        TaskOutcome::Evicted => "evicted",
        TaskOutcome::Failed => "failed",
        TaskOutcome::Killed => "killed",
        TaskOutcome::Lost => "lost",
        TaskOutcome::Unfinished => "unfinished",
    }
}

fn parse_outcome(s: &str) -> Option<TaskOutcome> {
    Some(match s {
        "finished" => TaskOutcome::Finished,
        "evicted" => TaskOutcome::Evicted,
        "failed" => TaskOutcome::Failed,
        "killed" => TaskOutcome::Killed,
        "lost" => TaskOutcome::Lost,
        "unfinished" => TaskOutcome::Unfinished,
        _ => return None,
    })
}

fn event_tag(k: TaskEventKind) -> &'static str {
    match k {
        TaskEventKind::Submit => "submit",
        TaskEventKind::Schedule => "schedule",
        TaskEventKind::Evict => "evict",
        TaskEventKind::Fail => "fail",
        TaskEventKind::Finish => "finish",
        TaskEventKind::Kill => "kill",
        TaskEventKind::Lost => "lost",
        TaskEventKind::UpdatePending => "update_pending",
        TaskEventKind::UpdateRunning => "update_running",
    }
}

fn parse_event_kind(s: &str) -> Option<TaskEventKind> {
    Some(match s {
        "submit" => TaskEventKind::Submit,
        "schedule" => TaskEventKind::Schedule,
        "evict" => TaskEventKind::Evict,
        "fail" => TaskEventKind::Fail,
        "finish" => TaskEventKind::Finish,
        "kill" => TaskEventKind::Kill,
        "lost" => TaskEventKind::Lost,
        "update_pending" => TaskEventKind::UpdatePending,
        "update_running" => TaskEventKind::UpdateRunning,
        _ => return None,
    })
}

/// Appends `v` in decimal — what `{}` prints for a `u64`, minus the
/// formatting machinery, which dominates the write stage's profile.
fn push_u64(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("decimal digits are ASCII"));
}

/// Appends `v` exactly as `{}` would print it. Zeros and integral values
/// (the bulk of trace floats: idle samples, whole-second durations) take
/// the integer path; everything else falls back to the shortest-repr
/// float formatter. Byte-for-byte identical output either way.
fn push_f64(out: &mut String, v: f64) {
    if v == 0.0 {
        out.push_str(if v.is_sign_negative() { "-0" } else { "0" });
        return;
    }
    // 2^53: above this not every integer is representable, and `{}` may
    // disagree with the cast; below it the i64 path is exact.
    const MAX_EXACT: f64 = 9_007_199_254_740_992.0;
    if v.trunc() == v && v.abs() < MAX_EXACT {
        if v < 0.0 {
            out.push('-');
        }
        push_u64(out, (v.abs()) as u64);
        return;
    }
    let _ = write!(out, "{v}");
}

/// Appends one `#machines` record line (newline included).
///
/// These per-record formatters are the single source of truth for the
/// text format: both the whole-trace writer below and the streaming
/// [`TextWriterSink`](crate::sink::TextWriterSink) call them, so the two
/// paths cannot drift apart byte-wise.
pub(crate) fn push_machine_line(out: &mut String, m: &MachineRecord) {
    push_u64(out, u64::from(m.id.0));
    out.push(',');
    push_f64(out, m.cpu_capacity);
    out.push(',');
    push_f64(out, m.memory_capacity);
    out.push(',');
    push_f64(out, m.page_cache_capacity);
    out.push('\n');
}

/// Appends one `#jobs` record line (newline included).
pub(crate) fn push_job_line(out: &mut String, j: &JobRecord) {
    push_u64(out, u64::from(j.id.0));
    out.push(',');
    push_u64(out, u64::from(j.user.0));
    out.push(',');
    push_u64(out, u64::from(j.priority.level()));
    out.push(',');
    push_u64(out, j.submit_time);
    out.push(',');
    match j.completion_time {
        Some(t) => push_u64(out, t),
        None => out.push('-'),
    }
    out.push(',');
    push_f64(out, j.cpu_seconds);
    out.push(',');
    push_f64(out, j.mean_memory);
    out.push('\n');
}

/// Appends one `#tasks` record line (newline included).
pub(crate) fn push_task_line(out: &mut String, t: &TaskRecord) {
    push_u64(out, u64::from(t.id.0));
    out.push(',');
    push_u64(out, u64::from(t.job.0));
    out.push(',');
    push_u64(out, u64::from(t.priority.level()));
    out.push(',');
    push_u64(out, t.submit_time);
    out.push(',');
    push_f64(out, t.demand.cpu);
    out.push(',');
    push_f64(out, t.demand.memory);
    out.push(',');
    push_u64(out, t.execution_time);
    out.push(',');
    push_u64(out, t.attempts as u64);
    out.push(',');
    push_u64(out, t.resubmit_wait);
    out.push(',');
    out.push_str(outcome_tag(t.outcome));
    out.push('\n');
}

/// Appends one `#events` record line (newline included).
pub(crate) fn push_event_line(out: &mut String, e: &TaskEvent) {
    push_u64(out, e.time);
    out.push(',');
    push_u64(out, u64::from(e.task.0));
    out.push(',');
    match e.machine {
        Some(m) => push_u64(out, u64::from(m.0)),
        None => out.push('-'),
    }
    out.push(',');
    out.push_str(event_tag(e.kind));
    out.push('\n');
}

/// Appends one usage-sample line under a `#series` header (newline
/// included).
pub(crate) fn push_sample_line(out: &mut String, sample: &UsageSample) {
    push_f64(out, sample.cpu.low);
    out.push(',');
    push_f64(out, sample.cpu.middle);
    out.push(',');
    push_f64(out, sample.cpu.high);
    out.push(',');
    push_f64(out, sample.memory_used.low);
    out.push(',');
    push_f64(out, sample.memory_used.middle);
    out.push(',');
    push_f64(out, sample.memory_used.high);
    out.push(',');
    push_f64(out, sample.memory_assigned.low);
    out.push(',');
    push_f64(out, sample.memory_assigned.middle);
    out.push(',');
    push_f64(out, sample.memory_assigned.high);
    out.push(',');
    push_f64(out, sample.page_cache);
    out.push('\n');
}

/// Serializes a trace to the sectioned-CSV text format.
pub fn write_trace(trace: &Trace) -> String {
    let _span = cgc_obs::span(cgc_obs::stages::WRITE);
    let mut out = String::new();
    let _ = writeln!(out, "#trace {} {}", trace.system, trace.horizon);

    let _ = writeln!(out, "#machines");
    for m in &trace.machines {
        push_machine_line(&mut out, m);
    }

    let _ = writeln!(out, "#jobs");
    for j in &trace.jobs {
        push_job_line(&mut out, j);
    }

    let _ = writeln!(out, "#tasks");
    for t in &trace.tasks {
        push_task_line(&mut out, t);
    }

    let _ = writeln!(out, "#events");
    for e in &trace.events {
        push_event_line(&mut out, e);
    }

    for s in &trace.host_series {
        let _ = writeln!(out, "#series {} {} {}", s.machine.0, s.start, s.period);
        for sample in &s.samples {
            push_sample_line(&mut out, sample);
        }
    }
    out
}

/// Serializes a trace like [`write_trace`] and appends the `#integrity`
/// trailer (per-section record counts plus a CRC-32 of the content), so
/// readers can detect truncation and bit rot. The sealed bytes are the
/// plain bytes plus one final line; every reader accepts both forms.
pub fn write_trace_sealed(trace: &Trace) -> String {
    let mut out = write_trace(trace);
    let mut crc = Crc32::new();
    for raw in out.lines() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        crc.update(line.as_bytes());
        crc.update(b"\n");
    }
    let samples: u64 = trace
        .host_series
        .iter()
        .map(|s| s.samples.len() as u64)
        .sum();
    let _ = writeln!(
        out,
        "#integrity v1 machines={} jobs={} tasks={} events={} samples={} crc={:08x}",
        trace.machines.len(),
        trace.jobs.len(),
        trace.tasks.len(),
        trace.events.len(),
        samples,
        crc.finalize()
    );
    out
}

pub(crate) struct LineParser<'a> {
    pub(crate) line_no: usize,
    pub(crate) line: &'a str,
}

impl<'a> LineParser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::syntax(self.line_no, message)
    }

    fn integrity_err(&self, message: impl Into<String>) -> ParseError {
        ParseError::integrity(self.line_no, message)
    }

    /// Splits the line on commas into a stack array — the hot path of
    /// every parse, so no per-line `Vec` is allocated. Fields beyond `N`
    /// are counted (for the error message) but not stored.
    fn split_into<const N: usize>(&self) -> ([&'a str; N], usize) {
        let mut out = [""; N];
        let mut n = 0;
        for f in self.line.split(',') {
            if n < N {
                out[n] = f;
            }
            n += 1;
        }
        (out, n)
    }

    fn fields<const N: usize>(&self) -> Result<[&'a str; N], ParseError> {
        let (fields, n) = self.split_into::<N>();
        if n != N {
            return Err(self.err(format!("expected {N} comma-separated fields, found {n}")));
        }
        Ok(fields)
    }

    /// Like [`fields`](Self::fields) but accepting any count in
    /// `lo..=HI` (legacy format tolerance); returns the actual count.
    fn fields_between<const HI: usize>(
        &self,
        lo: usize,
    ) -> Result<([&'a str; HI], usize), ParseError> {
        let (fields, n) = self.split_into::<HI>();
        if n < lo || n > HI {
            return Err(self.err(format!(
                "expected {lo}..={hi} comma-separated fields, found {n}",
                hi = HI
            )));
        }
        Ok((fields, n))
    }

    fn parse<T: FromStr>(&self, s: &str, what: &str) -> Result<T, ParseError> {
        s.parse()
            .map_err(|_| self.err(format!("invalid {what}: {s:?}")))
    }

    /// Parses a float and rejects NaN/infinity, which would silently
    /// poison downstream statistics (sorting, comparisons).
    fn parse_f64(&self, s: &str, what: &str) -> Result<f64, ParseError> {
        // Fast path for the most common field shape in practice: a bare
        // integer (timestamps, counts, zero usage values). Up to 15
        // digits every u64 is exactly representable as f64, so the cast
        // agrees bit-for-bit with the general parser.
        let b = s.as_bytes();
        if !b.is_empty() && b.len() <= 15 && b.iter().all(u8::is_ascii_digit) {
            let mut v = 0u64;
            for &d in b {
                v = v * 10 + u64::from(d - b'0');
            }
            return Ok(v as f64);
        }
        let v: f64 = self.parse(s, what)?;
        if !v.is_finite() {
            return Err(self.err(format!("non-finite {what}: {s:?}")));
        }
        Ok(v)
    }
}

/// True for the `#integrity` trailer line (which is excluded from its own
/// checksum).
fn is_trailer_line(line: &str) -> bool {
    line.strip_prefix('#')
        .is_some_and(|rest| rest.split_whitespace().next() == Some("integrity"))
}

/// Bumps the corruption counter once per failed integrity check (the
/// text trailer here, section checksums in [`crate::columnar`]).
pub(crate) fn integrity_failed() {
    cgc_obs::metrics().integrity_failures.add(1);
}

/// The recorded (or recomputed) contents of an `#integrity` trailer.
#[derive(Clone, Copy, PartialEq, Eq)]
struct Trailer {
    machines: u64,
    jobs: u64,
    tasks: u64,
    events: u64,
    samples: u64,
    crc: u32,
}

impl Trailer {
    /// Parses the words following `#integrity`. `None` on any deviation
    /// from `v1 machines=M jobs=J tasks=T events=E samples=S crc=HEX`.
    fn parse<'a>(mut words: impl Iterator<Item = &'a str>) -> Option<Trailer> {
        if words.next() != Some("v1") {
            return None;
        }
        let mut field =
            |name: &str| -> Option<&'a str> { words.next()?.strip_prefix(name)?.strip_prefix('=') };
        let trailer = Trailer {
            machines: field("machines")?.parse().ok()?,
            jobs: field("jobs")?.parse().ok()?,
            tasks: field("tasks")?.parse().ok()?,
            events: field("events")?.parse().ok()?,
            samples: field("samples")?.parse().ok()?,
            crc: u32::from_str_radix(field("crc")?, 16).ok()?,
        };
        if words.next().is_some() {
            return None;
        }
        Some(trailer)
    }

    /// Checks this recorded trailer against the counted one, reporting the
    /// first disagreement in a fixed order (counts before checksum, so a
    /// truncated section reads as a count mismatch rather than a CRC one).
    fn verify(&self, counted: &Trailer) -> Result<(), String> {
        for (what, recorded, got) in [
            ("machines", self.machines, counted.machines),
            ("jobs", self.jobs, counted.jobs),
            ("tasks", self.tasks, counted.tasks),
            ("events", self.events, counted.events),
            ("samples", self.samples, counted.samples),
        ] {
            if recorded != got {
                return Err(format!(
                    "integrity trailer mismatch: {what} count {got} != recorded {recorded}"
                ));
            }
        }
        if self.crc != counted.crc {
            return Err(format!(
                "integrity checksum mismatch: computed {:08x}, recorded {:08x}",
                counted.crc, self.crc
            ));
        }
        Ok(())
    }
}

#[derive(PartialEq)]
enum Section {
    Preamble,
    Machines,
    Jobs,
    Tasks,
    Events,
    Series,
}

/// Accumulated parse state; one [`line`](ParserState::line) call per input
/// line, each returning `Err` for exactly the lines strict mode aborts on
/// and lenient mode skips.
///
/// The `*_drained` offsets support the record-batch streaming reader
/// ([`crate::stream::TraceBatches`]): records handed off to the consumer
/// are removed from the vectors, and every dense-id / cross-reference
/// check accounts for `drained + len`. The whole-trace readers never
/// drain, so the offsets stay zero and behaviour (including error
/// messages) is unchanged.
pub(crate) struct ParserState {
    system: String,
    horizon: u64,
    machines: Vec<MachineRecord>,
    machines_drained: usize,
    jobs: Vec<JobRecord>,
    jobs_drained: usize,
    tasks: Vec<TaskRecord>,
    tasks_drained: usize,
    /// Replayed life-cycle state per task, to validate the event log.
    /// Never drained: an event may reference any earlier task, and one
    /// state per task is cheap even for very large traces.
    states: Vec<TaskState>,
    events: Vec<TaskEvent>,
    host_series: Vec<HostSeries>,
    /// Whether the current `#series` header was accepted (samples attach
    /// to `host_series.last_mut()` only while true).
    series_open: bool,
    section: Section,
    /// Running CRC-32 over every non-blank line fed so far (trimmed,
    /// `\n`-terminated), excluding the `#integrity` trailer itself.
    crc: Crc32,
    /// Total events accepted, surviving batch drains (the `events` vector
    /// itself is handed off by the streaming reader).
    events_seen: u64,
    /// Total usage samples accepted, surviving batch drains.
    samples_seen: u64,
    /// Whether an `#integrity` trailer line was encountered (verified or
    /// not); any further content is an error.
    trailer_seen: bool,
}

impl ParserState {
    pub(crate) fn new() -> Self {
        ParserState {
            system: String::new(),
            horizon: 0,
            machines: Vec::new(),
            machines_drained: 0,
            jobs: Vec::new(),
            jobs_drained: 0,
            tasks: Vec::new(),
            tasks_drained: 0,
            states: Vec::new(),
            events: Vec::new(),
            host_series: Vec::new(),
            series_open: false,
            section: Section::Preamble,
            crc: Crc32::new(),
            events_seen: 0,
            samples_seen: 0,
            trailer_seen: false,
        }
    }

    /// Whether a (successfully verified, in strict mode) `#integrity`
    /// trailer was present — [`read_trace_verified`] requires it.
    pub(crate) fn trailer_seen(&self) -> bool {
        self.trailer_seen
    }

    pub(crate) fn system(&self) -> &str {
        &self.system
    }

    pub(crate) fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Records parsed but not yet handed off — the batching reader drains
    /// once this crosses its batch size.
    pub(crate) fn pending_records(&self) -> usize {
        self.machines.len()
            + self.jobs.len()
            + self.tasks.len()
            + self.events.len()
            + self
                .host_series
                .iter()
                .map(|s| s.samples.len())
                .sum::<usize>()
    }

    /// Hands off everything parsed since the previous drain, leaving the
    /// state ready to keep parsing: the drained offsets advance so
    /// dense-id checks stay correct, the task life-cycle states are
    /// retained in full (events may reference any earlier task), and an
    /// open `#series` keeps its header — so later sample lines still
    /// attach to it — but sheds its samples.
    pub(crate) fn drain_batch(&mut self) -> crate::stream::TraceBatch {
        self.machines_drained += self.machines.len();
        self.jobs_drained += self.jobs.len();
        self.tasks_drained += self.tasks.len();
        let samples = self
            .host_series
            .iter()
            .map(|s| s.samples.len() as u64)
            .sum();
        if self.series_open {
            let open = self.host_series.pop().map(|mut s| {
                s.samples = Vec::new();
                s
            });
            self.host_series.clear();
            self.host_series.extend(open);
        } else {
            self.host_series.clear();
        }
        crate::stream::TraceBatch {
            machines: std::mem::take(&mut self.machines),
            jobs: std::mem::take(&mut self.jobs),
            tasks: std::mem::take(&mut self.tasks),
            events: std::mem::take(&mut self.events),
            samples,
        }
    }

    pub(crate) fn line(&mut self, p: &LineParser<'_>, line: &str) -> Result<(), ParseError> {
        if self.trailer_seen {
            return Err(p.integrity_err("data after #integrity trailer"));
        }
        if !is_trailer_line(line) {
            self.crc.update(line.as_bytes());
            self.crc.update(b"\n");
        }
        if let Some(rest) = line.strip_prefix('#') {
            return self.header(p, rest);
        }
        match self.section {
            Section::Preamble => Err(p.err("data before any section header")),
            Section::Machines => self.machine_line(p),
            Section::Jobs => self.job_line(p),
            Section::Tasks => self.task_line(p),
            Section::Events => self.event_line(p),
            Section::Series => self.series_line(p),
        }
    }

    fn header(&mut self, p: &LineParser<'_>, rest: &str) -> Result<(), ParseError> {
        let mut words = rest.split_whitespace();
        match words.next() {
            Some("trace") => {
                self.system = words
                    .next()
                    .ok_or_else(|| p.err("missing system name"))?
                    .to_string();
                self.horizon = p.parse(
                    words.next().ok_or_else(|| p.err("missing horizon"))?,
                    "horizon",
                )?;
            }
            Some("machines") => self.section = Section::Machines,
            Some("jobs") => self.section = Section::Jobs,
            Some("tasks") => self.section = Section::Tasks,
            Some("events") => self.section = Section::Events,
            Some("series") => {
                // A failed series header closes the current series so that
                // subsequent sample lines cannot attach to the wrong one.
                self.section = Section::Series;
                self.series_open = false;
                let machine: u32 = p.parse(
                    words
                        .next()
                        .ok_or_else(|| p.err("missing series machine"))?,
                    "machine id",
                )?;
                if (machine as usize) >= self.machines_drained + self.machines.len() {
                    return Err(p.err(format!("series references unknown machine {machine}")));
                }
                let start = p.parse(
                    words.next().ok_or_else(|| p.err("missing series start"))?,
                    "start",
                )?;
                let period = p.parse(
                    words.next().ok_or_else(|| p.err("missing series period"))?,
                    "period",
                )?;
                self.host_series
                    .push(HostSeries::new(MachineId(machine), start, period));
                self.series_open = true;
            }
            Some("integrity") => {
                self.trailer_seen = true;
                let recorded = Trailer::parse(words).ok_or_else(|| {
                    integrity_failed();
                    p.integrity_err("malformed #integrity trailer")
                })?;
                let counted = Trailer {
                    machines: (self.machines_drained + self.machines.len()) as u64,
                    jobs: (self.jobs_drained + self.jobs.len()) as u64,
                    tasks: (self.tasks_drained + self.tasks.len()) as u64,
                    events: self.events_seen,
                    samples: self.samples_seen,
                    crc: self.crc.finalize(),
                };
                if let Err(message) = recorded.verify(&counted) {
                    integrity_failed();
                    return Err(p.integrity_err(message));
                }
            }
            other => return Err(p.err(format!("unknown section {other:?}"))),
        }
        Ok(())
    }

    fn machine_line(&mut self, p: &LineParser<'_>) -> Result<(), ParseError> {
        let f = p.fields::<4>()?;
        let id: u32 = p.parse(f[0], "machine id")?;
        let expected = self.machines_drained + self.machines.len();
        if id as usize != expected {
            return Err(p.err(format!(
                "machine id {id} out of order (expected {expected})"
            )));
        }
        self.machines.push(MachineRecord::new(
            MachineId(id),
            p.parse_f64(f[1], "cpu capacity")?,
            p.parse_f64(f[2], "memory capacity")?,
            p.parse_f64(f[3], "page-cache capacity")?,
        ));
        Ok(())
    }

    fn job_line(&mut self, p: &LineParser<'_>) -> Result<(), ParseError> {
        let f = p.fields::<7>()?;
        let id: u32 = p.parse(f[0], "job id")?;
        let expected = self.jobs_drained + self.jobs.len();
        if id as usize != expected {
            return Err(p.err(format!("job id {id} out of order (expected {expected})")));
        }
        let priority: u8 = p.parse(f[2], "priority")?;
        self.jobs.push(JobRecord {
            id: JobId(id),
            user: UserId(p.parse(f[1], "user id")?),
            priority: Priority::new(priority)
                .ok_or_else(|| p.err(format!("priority {priority} out of range")))?,
            submit_time: p.parse(f[3], "submit time")?,
            tasks: Vec::new(),
            completion_time: if f[4] == "-" {
                None
            } else {
                Some(p.parse(f[4], "completion time")?)
            },
            cpu_seconds: p.parse_f64(f[5], "cpu seconds")?,
            mean_memory: p.parse_f64(f[6], "mean memory")?,
        });
        Ok(())
    }

    fn task_line(&mut self, p: &LineParser<'_>) -> Result<(), ParseError> {
        // Nine fields is the legacy format without `resubmit_wait`.
        let (f, n) = p.fields_between::<10>(9)?;
        let id: u32 = p.parse(f[0], "task id")?;
        let expected = self.tasks_drained + self.tasks.len();
        if id as usize != expected {
            return Err(p.err(format!("task id {id} out of order (expected {expected})")));
        }
        let priority: u8 = p.parse(f[2], "priority")?;
        let job = JobId(p.parse(f[1], "job id")?);
        let (resubmit_wait, outcome_field) = if n == 10 {
            (p.parse(f[8], "resubmit wait")?, f[9])
        } else {
            (0, f[8])
        };
        let record = TaskRecord {
            id: TaskId(id),
            job,
            priority: Priority::new(priority)
                .ok_or_else(|| p.err(format!("priority {priority} out of range")))?,
            submit_time: p.parse(f[3], "submit time")?,
            demand: Demand::new(
                p.parse_f64(f[4], "cpu demand")?,
                p.parse_f64(f[5], "mem demand")?,
            ),
            execution_time: p.parse(f[6], "execution time")?,
            attempts: p.parse(f[7], "attempts")?,
            resubmit_wait,
            outcome: parse_outcome(outcome_field)
                .ok_or_else(|| p.err(format!("unknown outcome {outcome_field:?}")))?,
        };
        let ji = job.index();
        if ji >= self.jobs_drained + self.jobs.len() {
            return Err(p.err(format!("task references unknown job {job}")));
        }
        // A job drained to a streaming consumer can no longer receive the
        // back-reference; batch consumers don't use `JobRecord::tasks`.
        if let Some(j) = ji
            .checked_sub(self.jobs_drained)
            .and_then(|i| self.jobs.get_mut(i))
        {
            j.tasks.push(record.id);
        }
        self.tasks.push(record);
        self.states.push(TaskState::Unsubmitted);
        Ok(())
    }

    fn event_line(&mut self, p: &LineParser<'_>) -> Result<(), ParseError> {
        let f = p.fields::<4>()?;
        let task = TaskId(p.parse(f[1], "task id")?);
        let kind = parse_event_kind(f[3])
            .ok_or_else(|| p.err(format!("unknown event kind {:?}", f[3])))?;
        let Some(state) = self.states.get_mut(task.index()) else {
            return Err(p.err(format!("event references unknown task {task}")));
        };
        // Replay through the life-cycle state machine so that consumers
        // (queue timelines, the resubmission analyzer) can trust the log.
        let next = state
            .apply(kind)
            .map_err(|source| p.err(format!("illegal event for task {task}: {source}")))?;
        *state = next;
        self.events.push(TaskEvent {
            time: p.parse(f[0], "time")?,
            task,
            machine: if f[2] == "-" {
                None
            } else {
                Some(MachineId(p.parse(f[2], "machine id")?))
            },
            kind,
        });
        self.events_seen += 1;
        Ok(())
    }

    fn series_line(&mut self, p: &LineParser<'_>) -> Result<(), ParseError> {
        let f = p.fields::<10>()?;
        let Some(series) = self.host_series.last_mut().filter(|_| self.series_open) else {
            return Err(p.err("usage sample outside any #series section"));
        };
        series.samples.push(UsageSample {
            cpu: ClassSplit {
                low: p.parse_f64(f[0], "cpu low")?,
                middle: p.parse_f64(f[1], "cpu middle")?,
                high: p.parse_f64(f[2], "cpu high")?,
            },
            memory_used: ClassSplit {
                low: p.parse_f64(f[3], "mem-used low")?,
                middle: p.parse_f64(f[4], "mem-used middle")?,
                high: p.parse_f64(f[5], "mem-used high")?,
            },
            memory_assigned: ClassSplit {
                low: p.parse_f64(f[6], "mem-assigned low")?,
                middle: p.parse_f64(f[7], "mem-assigned middle")?,
                high: p.parse_f64(f[8], "mem-assigned high")?,
            },
            page_cache: p.parse_f64(f[9], "page cache")?,
        });
        self.samples_seen += 1;
        Ok(())
    }

    fn finish(self) -> Trace {
        Trace {
            system: self.system,
            horizon: self.horizon,
            machines: self.machines,
            jobs: self.jobs,
            tasks: self.tasks,
            events: self.events,
            host_series: self.host_series,
        }
    }
}

/// Feeds every non-blank line to `st`, routing per-line errors through
/// `sink` — which either aborts (strict) or records a warning (lenient).
/// Returns the number of non-blank lines seen.
fn parse_lines(
    text: &str,
    st: &mut ParserState,
    mut sink: impl FnMut(ParseError) -> Result<(), ParseError>,
) -> Result<u64, ParseError> {
    let mut tally = IngestTally::new();
    tally.bytes = text.len() as u64;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        tally.lines += 1;
        let p = LineParser {
            line_no: i + 1,
            line,
        };
        if let Err(e) = st.line(&p, line) {
            sink(e)?;
            // The sink swallowed the error (lenient mode): that line was
            // salvaged around. Strict sinks abort above, leaving 0.
            tally.salvaged += 1;
        }
    }
    Ok(tally.lines)
}

/// Parses a trace previously produced by [`write_trace`], strictly: the
/// first malformed line aborts with a [`ParseError`].
///
/// The returned trace satisfies the structural invariants analyzers rely
/// on (dense ids, valid cross-references, a legal event log); see the
/// module docs.
pub fn read_trace(text: &str) -> Result<Trace, ParseError> {
    let _span = cgc_obs::span(cgc_obs::stages::READ);
    let mut st = ParserState::new();
    parse_lines(text, &mut st, Err)?;
    Ok(st.finish())
}

/// Like [`read_trace`], but additionally *requires* the `#integrity`
/// trailer written by [`write_trace_sealed`]. A trace that parses cleanly
/// yet lacks the trailer — the signature of a file truncated at a line
/// boundary, which plain parsing cannot distinguish from a short but
/// intact trace — is rejected with [`ParseErrorKind::Integrity`].
pub fn read_trace_verified(text: &str) -> Result<Trace, ParseError> {
    let _span = cgc_obs::span(cgc_obs::stages::READ);
    let mut st = ParserState::new();
    let lines = parse_lines(text, &mut st, Err)?;
    if !st.trailer_seen() {
        integrity_failed();
        return Err(ParseError::integrity(
            lines as usize + 1,
            "missing #integrity trailer (truncated or unsealed trace)",
        ));
    }
    Ok(st.finish())
}

/// Parses a trace leniently: corrupt lines are skipped and returned as
/// warnings instead of aborting, so partially corrupted or truncated
/// traces still yield every salvageable record.
///
/// On well-formed input this is exactly [`read_trace`] with no warnings.
/// Note that one corrupt line can shadow later ones (a skipped task makes
/// ids non-dense, a skipped event invalidates its successors), so the
/// warning list may be longer than the number of originally corrupted
/// lines.
pub fn read_trace_lenient(text: &str) -> LenientParse {
    let _span = cgc_obs::span(cgc_obs::stages::READ);
    let mut st = ParserState::new();
    let mut warnings = Vec::new();
    let lines_seen = parse_lines(text, &mut st, |e| {
        warnings.push(e);
        Ok(())
    })
    .unwrap_or(0);
    LenientParse {
        trace: st.finish(),
        warnings,
        lines_seen,
    }
}

/// Feeds every non-blank line from `reader` to `st` through one reused
/// line buffer — no whole-file `String` and no per-line allocation.
/// I/O errors (including invalid UTF-8) surface as a [`ParseError`] on
/// the offending line and end the stream.
fn parse_reader<R: std::io::BufRead>(
    mut reader: R,
    st: &mut ParserState,
    mut sink: impl FnMut(ParseError) -> Result<(), ParseError>,
) -> Result<u64, ParseError> {
    let mut tally = IngestTally::new();
    let mut buf = String::new();
    let mut line_no = 0usize;
    loop {
        buf.clear();
        line_no += 1;
        match reader.read_line(&mut buf) {
            Ok(0) => return Ok(tally.lines),
            Ok(n) => tally.bytes += n as u64,
            Err(e) => {
                // The stream position is unreliable after a read error;
                // report and stop rather than risk spinning.
                sink(ParseError::io(line_no, format!("read error: {e}")))?;
                tally.salvaged += 1;
                return Ok(tally.lines);
            }
        }
        let line = buf.trim();
        if line.is_empty() {
            continue;
        }
        tally.lines += 1;
        let p = LineParser { line_no, line };
        if let Err(e) = st.line(&p, line) {
            sink(e)?;
            tally.salvaged += 1;
        }
    }
}

/// Streaming counterpart of [`read_trace`]: parses directly from a
/// [`BufRead`](std::io::BufRead) without materializing the file as one
/// `String`. Identical acceptance, errors and output on the same bytes.
pub fn read_trace_from<R: std::io::BufRead>(reader: R) -> Result<Trace, ParseError> {
    let _span = cgc_obs::span(cgc_obs::stages::READ);
    let mut st = ParserState::new();
    parse_reader(reader, &mut st, Err)?;
    Ok(st.finish())
}

/// Streaming counterpart of [`read_trace_lenient`].
pub fn read_trace_lenient_from<R: std::io::BufRead>(reader: R) -> LenientParse {
    let _span = cgc_obs::span(cgc_obs::stages::READ);
    let mut st = ParserState::new();
    let mut warnings = Vec::new();
    let lines_seen = parse_reader(reader, &mut st, |e| {
        warnings.push(e);
        Ok(())
    })
    .unwrap_or(0);
    LenientParse {
        trace: st.finish(),
        warnings,
        lines_seen,
    }
}

// ---------------------------------------------------------------------------
// Parallel strict parsing
// ---------------------------------------------------------------------------
//
// Three passes. (1) A sequential *routing* pass walks the lines, executes
// section headers (they carry all the cross-line state: current section,
// the open `#series`) and tags every data line with its section; it stops
// at the first header-level error, exactly where the sequential parser
// would. (2) The tagged data lines — where all the `str::parse` work
// lives — are parsed *in parallel* into self-contained `Row`s that record
// either the fully parsed record or the first within-line error in the
// sequential parser's field order. (3) A sequential *merge* pass replays
// rows in line order, interleaving the state-dependent checks (dense ids,
// job/task cross-references, the event life-cycle machine) at the same
// points the sequential parser performs them, so the first error reported
// is byte-for-byte the one `read_trace` reports.

#[derive(Clone, Copy, PartialEq)]
enum DataSection {
    Machines,
    Jobs,
    Tasks,
    Events,
    Series,
}

enum Routed<'a> {
    /// A data line, tagged with its section.
    Data {
        line_no: usize,
        section: DataSection,
        line: &'a str,
    },
    /// A `#series` header that passed routing-time validation.
    OpenSeries {
        machine: u32,
        start: Timestamp,
        period: u64,
    },
}

use crate::Timestamp;

/// Where a within-line syntax error sits relative to the line's
/// state-dependent checks (which the merge pass replays in order).
enum RowErr {
    /// Before any state check (unparsable id, bad field count, ...).
    Early(ParseError),
    /// The record id parsed but a later field did not: the id density
    /// check runs first, then this error surfaces.
    AfterId { id: u32, err: ParseError },
    /// An event's task and kind parsed but time/machine did not: the
    /// task-exists and life-cycle checks run first.
    AfterEventChecks {
        task: u32,
        kind: TaskEventKind,
        err: ParseError,
    },
    /// A sample's field count was right but a value did not parse: the
    /// outside-any-series check runs first.
    AfterSeriesCheck(ParseError),
}

enum Row {
    Machine {
        id: u32,
        cpu: f64,
        mem: f64,
        pc: f64,
    },
    Job(Box<JobRecord>),
    Task(Box<TaskRecord>),
    Event(TaskEvent),
    Sample(Box<UsageSample>),
    Err(RowErr),
}

/// Routing pass: headers run here (sequentially); data lines are tagged.
/// Returns the preamble, the routed lines up to the first header error,
/// and that error if any. Series headers are validated against the raw
/// machine-line count: it can only exceed the sequential parser's machine
/// count when an earlier machine line is broken, and that earlier error
/// wins during the merge anyway.
fn route(text: &str) -> (String, u64, Vec<Routed<'_>>, Option<ParseError>) {
    let mut system = String::new();
    let mut horizon = 0u64;
    let mut section: Option<DataSection> = None;
    let mut machine_lines = 0usize;
    let mut job_lines = 0u64;
    let mut task_lines = 0u64;
    let mut event_lines = 0u64;
    let mut sample_lines = 0u64;
    let mut trailer_seen = false;
    let mut crc = Crc32::new();
    let mut items = Vec::new();
    // Routing stops at the first header-level error but keeps everything
    // routed so far: an error on an *earlier* data line must win, and only
    // the merge pass can tell. `try { }` blocks would express this best;
    // a closure per header does the job.
    let mut tally = IngestTally::new();
    tally.bytes = text.len() as u64;
    let mut abort = None;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        tally.lines += 1;
        let line_no = i + 1;
        let p = LineParser { line_no, line };
        if trailer_seen {
            abort = Some(p.integrity_err("data after #integrity trailer"));
            break;
        }
        if !is_trailer_line(line) {
            crc.update(line.as_bytes());
            crc.update(b"\n");
        }
        let Some(rest) = line.strip_prefix('#') else {
            match section {
                None => {
                    abort = Some(p.err("data before any section header"));
                    break;
                }
                Some(sec) => {
                    match sec {
                        DataSection::Machines => machine_lines += 1,
                        DataSection::Jobs => job_lines += 1,
                        DataSection::Tasks => task_lines += 1,
                        DataSection::Events => event_lines += 1,
                        DataSection::Series => sample_lines += 1,
                    }
                    items.push(Routed::Data {
                        line_no,
                        section: sec,
                        line,
                    });
                }
            }
            continue;
        };
        let mut words = rest.split_whitespace();
        let header = (|| -> Result<(), ParseError> {
            match words.next() {
                Some("trace") => {
                    system = words
                        .next()
                        .ok_or_else(|| p.err("missing system name"))?
                        .to_string();
                    horizon = p.parse(
                        words.next().ok_or_else(|| p.err("missing horizon"))?,
                        "horizon",
                    )?;
                }
                Some("machines") => section = Some(DataSection::Machines),
                Some("jobs") => section = Some(DataSection::Jobs),
                Some("tasks") => section = Some(DataSection::Tasks),
                Some("events") => section = Some(DataSection::Events),
                Some("series") => {
                    section = Some(DataSection::Series);
                    let machine: u32 = p.parse(
                        words
                            .next()
                            .ok_or_else(|| p.err("missing series machine"))?,
                        "machine id",
                    )?;
                    // Validated against the *raw* machine-line count: it can
                    // only exceed the parsed count when an earlier machine
                    // line is broken, and that earlier error wins in merge.
                    if machine as usize >= machine_lines {
                        return Err(p.err(format!("series references unknown machine {machine}")));
                    }
                    let start = p.parse(
                        words.next().ok_or_else(|| p.err("missing series start"))?,
                        "start",
                    )?;
                    let period = p.parse(
                        words.next().ok_or_else(|| p.err("missing series period"))?,
                        "period",
                    )?;
                    items.push(Routed::OpenSeries {
                        machine,
                        start,
                        period,
                    });
                }
                Some("integrity") => {
                    trailer_seen = true;
                    let recorded = Trailer::parse(words).ok_or_else(|| {
                        integrity_failed();
                        p.integrity_err("malformed #integrity trailer")
                    })?;
                    // Verified against the *raw* per-section line counts:
                    // they can only differ from the parsed counts when an
                    // earlier data line is broken, and that earlier error
                    // wins during the merge anyway.
                    let counted = Trailer {
                        machines: machine_lines as u64,
                        jobs: job_lines,
                        tasks: task_lines,
                        events: event_lines,
                        samples: sample_lines,
                        crc: crc.finalize(),
                    };
                    if let Err(message) = recorded.verify(&counted) {
                        integrity_failed();
                        return Err(p.integrity_err(message));
                    }
                }
                other => return Err(p.err(format!("unknown section {other:?}"))),
            }
            Ok(())
        })();
        if let Err(e) = header {
            abort = Some(e);
            break;
        }
    }
    (system, horizon, items, abort)
}

fn parse_row(p: &LineParser<'_>, section: DataSection) -> Row {
    match section {
        DataSection::Machines => machine_row(p),
        DataSection::Jobs => job_row(p),
        DataSection::Tasks => task_row(p),
        DataSection::Events => event_row(p),
        DataSection::Series => sample_row(p),
    }
}

fn machine_row(p: &LineParser<'_>) -> Row {
    let f = match p.fields::<4>() {
        Ok(f) => f,
        Err(e) => return Row::Err(RowErr::Early(e)),
    };
    let id: u32 = match p.parse(f[0], "machine id") {
        Ok(v) => v,
        Err(e) => return Row::Err(RowErr::Early(e)),
    };
    let rest = || -> Result<(f64, f64, f64), ParseError> {
        Ok((
            p.parse_f64(f[1], "cpu capacity")?,
            p.parse_f64(f[2], "memory capacity")?,
            p.parse_f64(f[3], "page-cache capacity")?,
        ))
    };
    match rest() {
        Ok((cpu, mem, pc)) => Row::Machine { id, cpu, mem, pc },
        Err(err) => Row::Err(RowErr::AfterId { id, err }),
    }
}

fn job_row(p: &LineParser<'_>) -> Row {
    let f = match p.fields::<7>() {
        Ok(f) => f,
        Err(e) => return Row::Err(RowErr::Early(e)),
    };
    let id: u32 = match p.parse(f[0], "job id") {
        Ok(v) => v,
        Err(e) => return Row::Err(RowErr::Early(e)),
    };
    // Field order below mirrors the sequential parser exactly, so the
    // first error of a broken line is the same error it would report.
    let rest = || -> Result<JobRecord, ParseError> {
        let priority: u8 = p.parse(f[2], "priority")?;
        Ok(JobRecord {
            id: JobId(id),
            user: UserId(p.parse(f[1], "user id")?),
            priority: Priority::new(priority)
                .ok_or_else(|| p.err(format!("priority {priority} out of range")))?,
            submit_time: p.parse(f[3], "submit time")?,
            tasks: Vec::new(),
            completion_time: if f[4] == "-" {
                None
            } else {
                Some(p.parse(f[4], "completion time")?)
            },
            cpu_seconds: p.parse_f64(f[5], "cpu seconds")?,
            mean_memory: p.parse_f64(f[6], "mean memory")?,
        })
    };
    match rest() {
        Ok(record) => Row::Job(Box::new(record)),
        Err(err) => Row::Err(RowErr::AfterId { id, err }),
    }
}

fn task_row(p: &LineParser<'_>) -> Row {
    let (f, n) = match p.fields_between::<10>(9) {
        Ok(v) => v,
        Err(e) => return Row::Err(RowErr::Early(e)),
    };
    let id: u32 = match p.parse(f[0], "task id") {
        Ok(v) => v,
        Err(e) => return Row::Err(RowErr::Early(e)),
    };
    let rest = || -> Result<TaskRecord, ParseError> {
        let priority: u8 = p.parse(f[2], "priority")?;
        let job = JobId(p.parse(f[1], "job id")?);
        let (resubmit_wait, outcome_field) = if n == 10 {
            (p.parse(f[8], "resubmit wait")?, f[9])
        } else {
            (0, f[8])
        };
        Ok(TaskRecord {
            id: TaskId(id),
            job,
            priority: Priority::new(priority)
                .ok_or_else(|| p.err(format!("priority {priority} out of range")))?,
            submit_time: p.parse(f[3], "submit time")?,
            demand: Demand::new(
                p.parse_f64(f[4], "cpu demand")?,
                p.parse_f64(f[5], "mem demand")?,
            ),
            execution_time: p.parse(f[6], "execution time")?,
            attempts: p.parse(f[7], "attempts")?,
            resubmit_wait,
            outcome: parse_outcome(outcome_field)
                .ok_or_else(|| p.err(format!("unknown outcome {outcome_field:?}")))?,
        })
    };
    match rest() {
        Ok(record) => Row::Task(Box::new(record)),
        Err(err) => Row::Err(RowErr::AfterId { id, err }),
    }
}

fn event_row(p: &LineParser<'_>) -> Row {
    let f = match p.fields::<4>() {
        Ok(f) => f,
        Err(e) => return Row::Err(RowErr::Early(e)),
    };
    let task: u32 = match p.parse(f[1], "task id") {
        Ok(v) => v,
        Err(e) => return Row::Err(RowErr::Early(e)),
    };
    let kind = match parse_event_kind(f[3])
        .ok_or_else(|| p.err(format!("unknown event kind {:?}", f[3])))
    {
        Ok(k) => k,
        Err(e) => return Row::Err(RowErr::Early(e)),
    };
    let rest = || -> Result<(Timestamp, Option<MachineId>), ParseError> {
        Ok((
            p.parse(f[0], "time")?,
            if f[2] == "-" {
                None
            } else {
                Some(MachineId(p.parse(f[2], "machine id")?))
            },
        ))
    };
    match rest() {
        Ok((time, machine)) => Row::Event(TaskEvent {
            time,
            task: TaskId(task),
            machine,
            kind,
        }),
        Err(err) => Row::Err(RowErr::AfterEventChecks { task, kind, err }),
    }
}

fn sample_row(p: &LineParser<'_>) -> Row {
    let f = match p.fields::<10>() {
        Ok(f) => f,
        Err(e) => return Row::Err(RowErr::Early(e)),
    };
    let rest = || -> Result<UsageSample, ParseError> {
        Ok(UsageSample {
            cpu: ClassSplit {
                low: p.parse_f64(f[0], "cpu low")?,
                middle: p.parse_f64(f[1], "cpu middle")?,
                high: p.parse_f64(f[2], "cpu high")?,
            },
            memory_used: ClassSplit {
                low: p.parse_f64(f[3], "mem-used low")?,
                middle: p.parse_f64(f[4], "mem-used middle")?,
                high: p.parse_f64(f[5], "mem-used high")?,
            },
            memory_assigned: ClassSplit {
                low: p.parse_f64(f[6], "mem-assigned low")?,
                middle: p.parse_f64(f[7], "mem-assigned middle")?,
                high: p.parse_f64(f[8], "mem-assigned high")?,
            },
            page_cache: p.parse_f64(f[9], "page cache")?,
        })
    };
    match rest() {
        Ok(sample) => Row::Sample(Box::new(sample)),
        Err(e) => Row::Err(RowErr::AfterSeriesCheck(e)),
    }
}

/// Parallel counterpart of [`read_trace`]: same acceptance, same output,
/// same first-error line numbers, with the per-line field parsing fanned
/// out over the rayon pool. Worth it for multi-megabyte traces; for small
/// inputs [`read_trace`] has less overhead.
pub fn read_trace_parallel(text: &str) -> Result<Trace, ParseError> {
    use rayon::prelude::*;

    let _span = cgc_obs::span(cgc_obs::stages::READ);
    // With no parallelism to exploit, the fan-out (routing pass + buffered
    // row vector + merge replay) is pure overhead over the single-pass
    // sequential parser; fall through to it. The span is already open, so
    // inline the parse instead of calling `read_trace`.
    if std::thread::available_parallelism().map_or(1, |n| n.get()) <= 1 {
        let mut st = ParserState::new();
        parse_lines(text, &mut st, Err)?;
        return Ok(st.finish());
    }
    let (system, horizon, items, abort) = route(text);
    let rows: Vec<Option<Row>> = items
        .par_iter()
        .map(|it| match it {
            Routed::Data {
                line_no,
                section,
                line,
            } => Some(parse_row(
                &LineParser {
                    line_no: *line_no,
                    line,
                },
                *section,
            )),
            Routed::OpenSeries { .. } => None,
        })
        .collect();

    // Merge pass: replay rows in line order with the state-dependent
    // checks at sequential positions.
    let mut st = ParserState::new();
    st.system = system;
    st.horizon = horizon;
    for (item, row) in items.iter().zip(rows) {
        let (line_no, section) = match item {
            Routed::OpenSeries {
                machine,
                start,
                period,
            } => {
                st.host_series
                    .push(HostSeries::new(MachineId(*machine), *start, *period));
                st.series_open = true;
                continue;
            }
            Routed::Data {
                line_no, section, ..
            } => (*line_no, *section),
        };
        let err_at = |message: String| ParseError::syntax(line_no, message);
        let dense = |id: u32, have: usize, what: &str| -> Result<(), ParseError> {
            if id as usize != have {
                Err(err_at(format!(
                    "{what} id {id} out of order (expected {have})"
                )))
            } else {
                Ok(())
            }
        };
        match row.expect("every Data item parses to a row") {
            Row::Machine { id, cpu, mem, pc } => {
                dense(id, st.machines.len(), "machine")?;
                st.machines
                    .push(MachineRecord::new(MachineId(id), cpu, mem, pc));
            }
            Row::Job(record) => {
                dense(record.id.0, st.jobs.len(), "job")?;
                st.jobs.push(*record);
            }
            Row::Task(record) => {
                dense(record.id.0, st.tasks.len(), "task")?;
                let ji = record.job.index();
                if ji >= st.jobs.len() {
                    return Err(err_at(format!(
                        "task references unknown job {}",
                        record.job
                    )));
                }
                st.jobs[ji].tasks.push(record.id);
                st.tasks.push(*record);
                st.states.push(TaskState::Unsubmitted);
            }
            Row::Event(event) => {
                apply_event_checks(&mut st, event.task, event.kind, &err_at)?;
                st.events.push(event);
            }
            Row::Sample(sample) => {
                let Some(series) = st.host_series.last_mut().filter(|_| st.series_open) else {
                    return Err(err_at("usage sample outside any #series section".into()));
                };
                series.samples.push(*sample);
            }
            Row::Err(RowErr::Early(e)) => return Err(e),
            Row::Err(RowErr::AfterId { id, err }) => {
                let (have, what) = match section {
                    DataSection::Machines => (st.machines.len(), "machine"),
                    DataSection::Jobs => (st.jobs.len(), "job"),
                    DataSection::Tasks => (st.tasks.len(), "task"),
                    // Events/series lines never produce AfterId.
                    _ => unreachable!("AfterId outside a record section"),
                };
                dense(id, have, what)?;
                return Err(err);
            }
            Row::Err(RowErr::AfterEventChecks { task, kind, err }) => {
                apply_event_checks(&mut st, TaskId(task), kind, &err_at)?;
                return Err(err);
            }
            Row::Err(RowErr::AfterSeriesCheck(err)) => {
                if !st.series_open || st.host_series.is_empty() {
                    return Err(err_at("usage sample outside any #series section".into()));
                }
                return Err(err);
            }
        }
    }
    if let Some(e) = abort {
        return Err(e);
    }
    Ok(st.finish())
}

/// The state-dependent half of event parsing: the referenced task must
/// exist and the event must be legal in its life-cycle state machine.
fn apply_event_checks(
    st: &mut ParserState,
    task: TaskId,
    kind: TaskEventKind,
    err_at: &impl Fn(String) -> ParseError,
) -> Result<(), ParseError> {
    let Some(state) = st.states.get_mut(task.index()) else {
        return Err(err_at(format!("event references unknown task {task}")));
    };
    let next = state
        .apply(kind)
        .map_err(|source| err_at(format!("illegal event for task {task}: {source}")))?;
    *state = next;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;
    use crate::usage::UsageSample;

    #[test]
    fn fast_number_formatting_matches_display() {
        for v in [0u64, 1, 9, 10, 99, 12_345, u64::MAX] {
            let mut s = String::new();
            push_u64(&mut s, v);
            assert_eq!(s, v.to_string());
        }
        for v in [
            0.0f64,
            -0.0,
            1.0,
            -1.0,
            42.0,
            0.125,
            -0.1,
            1e-9,
            123.456,
            9_007_199_254_740_991.0,
            9_007_199_254_740_992.0,
            1.0e300,
            f64::MIN_POSITIVE,
        ] {
            let mut s = String::new();
            push_f64(&mut s, v);
            assert_eq!(s, v.to_string(), "mismatch for {v:e}");
        }
    }

    #[test]
    fn parse_f64_integer_fast_path_matches_std() {
        let p = LineParser {
            line_no: 1,
            line: "",
        };
        for s in ["0", "7", "300", "999999999999999", "1000000000000000"] {
            assert_eq!(
                p.parse_f64(s, "x").unwrap(),
                s.parse::<f64>().unwrap(),
                "fast path diverged on {s:?}"
            );
        }
        assert!(p.parse_f64("0.25", "x").unwrap() == 0.25);
        assert!(p.parse_f64("nan", "x").is_err());
        assert!(p.parse_f64("inf", "x").is_err());
        assert!(p.parse_f64("", "x").is_err());
    }

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new("roundtrip", 3_600);
        let m = b.add_machine(0.5, 0.75, 1.0);
        let j = b.add_job(UserId(7), Priority::from_level(9), 42);
        let t = b.add_task(j, Demand::new(0.03, 0.015));
        b.set_job_usage(j, 120.5, 0.014);
        b.push_event(TaskEvent {
            time: 42,
            task: t,
            machine: None,
            kind: TaskEventKind::Submit,
        });
        b.push_event(TaskEvent {
            time: 50,
            task: t,
            machine: Some(m),
            kind: TaskEventKind::Schedule,
        });
        b.push_event(TaskEvent {
            time: 170,
            task: t,
            machine: Some(m),
            kind: TaskEventKind::Finish,
        });
        let mut series = HostSeries::new(m, 0, 300);
        series.samples.push(UsageSample {
            cpu: ClassSplit {
                low: 0.01,
                middle: 0.0,
                high: 0.02,
            },
            memory_used: ClassSplit {
                low: 0.1,
                middle: 0.0,
                high: 0.0,
            },
            memory_assigned: ClassSplit {
                low: 0.12,
                middle: 0.0,
                high: 0.0,
            },
            page_cache: 0.07,
        });
        b.add_host_series(series);
        b.build().unwrap()
    }

    /// A trace with a resubmission, so `resubmit_wait` is non-zero.
    fn resubmitted_trace() -> Trace {
        let mut b = TraceBuilder::new("retry", 3_600);
        let m = b.add_machine(1.0, 1.0, 1.0);
        let j = b.add_job(UserId(0), Priority::from_level(4), 0);
        let t = b.add_task(j, Demand::new(0.1, 0.1));
        for (time, machine, kind) in [
            (0, None, TaskEventKind::Submit),
            (5, Some(m), TaskEventKind::Schedule),
            (100, Some(m), TaskEventKind::Fail),
            (130, None, TaskEventKind::Submit),
            (160, Some(m), TaskEventKind::Schedule),
            (400, Some(m), TaskEventKind::Finish),
        ] {
            b.push_event(TaskEvent {
                time,
                task: t,
                machine,
                kind,
            });
        }
        b.build().unwrap()
    }

    #[test]
    fn round_trip_preserves_trace() {
        let trace = sample_trace();
        let text = write_trace(&trace);
        let parsed = read_trace(&text).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn round_trip_preserves_resubmit_wait() {
        let trace = resubmitted_trace();
        assert_eq!(trace.tasks[0].resubmit_wait, 60); // 100 -> 160
        let parsed = read_trace(&write_trace(&trace)).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn round_trip_empty_trace() {
        let trace = TraceBuilder::new("empty", 100).build().unwrap();
        let parsed = read_trace(&write_trace(&trace)).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn legacy_nine_field_task_lines_accepted() {
        let text = "#trace x 10\n#jobs\n0,0,1,0,-,0,0\n#tasks\n0,0,1,0,0.1,0.1,10,1,finished\n";
        let trace = read_trace(text).unwrap();
        assert_eq!(trace.tasks[0].resubmit_wait, 0);
        assert_eq!(trace.tasks[0].attempts, 1);
    }

    #[test]
    fn unknown_event_kind_rejected() {
        let text = "#trace x 10\n#events\n1,0,-,explode\n";
        let err = read_trace(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("explode"));
    }

    #[test]
    fn wrong_field_count_rejected() {
        let text = "#trace x 10\n#machines\n0,0.5\n";
        let err = read_trace(text).unwrap_err();
        assert!(err.message.contains("expected 4"));
    }

    #[test]
    fn task_with_unknown_job_rejected() {
        let text = "#trace x 10\n#tasks\n0,5,1,0,0.1,0.1,10,1,finished\n";
        let err = read_trace(text).unwrap_err();
        assert!(err.message.contains("unknown job"));
    }

    #[test]
    fn event_with_unknown_task_rejected() {
        let text = "#trace x 10\n#events\n1,7,-,submit\n";
        let err = read_trace(text).unwrap_err();
        assert!(err.message.contains("unknown task"));
    }

    #[test]
    fn illegal_event_sequence_rejected() {
        // Schedule before submit violates the life-cycle state machine.
        let text = "#trace x 10\n#jobs\n0,0,1,0,-,0,0\n#tasks\n\
                    0,0,1,0,0.1,0.1,0,0,0,unfinished\n#events\n5,0,0,schedule\n";
        let err = read_trace(text).unwrap_err();
        assert_eq!(err.line, 7);
        assert!(err.message.contains("illegal event"));
    }

    #[test]
    fn non_dense_ids_rejected() {
        let text = "#trace x 10\n#machines\n1,0.5,0.5,1\n";
        let err = read_trace(text).unwrap_err();
        assert!(err.message.contains("out of order"));
    }

    #[test]
    fn series_for_unknown_machine_rejected() {
        let text = "#trace x 10\n#series 3 0 300\n";
        let err = read_trace(text).unwrap_err();
        assert!(err.message.contains("unknown machine"));
    }

    #[test]
    fn sample_outside_series_rejected_with_line_number() {
        // A corrupt series header must not let samples attach anywhere.
        let text = "#trace x 10\n#machines\n0,1,1,1\n#series bad 0 300\n\
                    0,0,0,0,0,0,0,0,0,0\n";
        let err = read_trace(text).unwrap_err();
        assert_eq!(err.line, 4);
        let lenient = read_trace_lenient(text);
        assert_eq!(lenient.warnings.len(), 2);
        assert_eq!(lenient.warnings[1].line, 5);
        assert!(lenient.warnings[1].message.contains("outside any #series"));
        assert!(lenient.trace.host_series.is_empty());
    }

    #[test]
    fn non_finite_floats_rejected() {
        for text in [
            "#trace x 10\n#machines\n0,NaN,1,1\n",
            "#trace x 10\n#machines\n0,inf,1,1\n",
        ] {
            let err = read_trace(text).unwrap_err();
            assert!(err.message.contains("non-finite"), "{}", err.message);
        }
    }

    #[test]
    fn data_before_section_rejected() {
        let text = "#trace x 10\n0,1,2,3\n";
        let err = read_trace(text).unwrap_err();
        assert!(err.message.contains("before any section"));
    }

    #[test]
    fn priorities_out_of_range_rejected() {
        let text = "#trace x 10\n#jobs\n0,0,99,0,-,0,0\n";
        let err = read_trace(text).unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn blank_lines_ignored() {
        let trace = sample_trace();
        let mut text = write_trace(&trace);
        text = text.replace("#jobs", "\n#jobs\n");
        let parsed = read_trace(&text).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn lenient_matches_strict_on_clean_input() {
        let trace = resubmitted_trace();
        let lenient = read_trace_lenient(&write_trace(&trace));
        assert!(lenient.warnings.is_empty());
        assert_eq!(lenient.trace, trace);
    }

    #[test]
    fn lenient_skips_corrupt_lines_and_reports_them() {
        let trace = sample_trace();
        let text = write_trace(&trace);
        // Corrupt the single machine line and the finish event.
        let corrupted: String = text
            .lines()
            .map(|l| {
                if l.starts_with("0,0.5,0.75") {
                    "garbage machine line\n".to_string()
                } else if l == "170,0,0,finish" {
                    "170,0,0,explode\n".to_string()
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        assert!(read_trace(&corrupted).is_err());
        let lenient = read_trace_lenient(&corrupted);
        // The machine line, the event, and the series header (which now
        // references a machine that failed to parse) are reported.
        assert!(lenient.warnings.len() >= 3);
        assert!(lenient
            .warnings
            .iter()
            .any(|w| w.message.contains("expected 4")));
        assert!(lenient
            .warnings
            .iter()
            .any(|w| w.message.contains("explode")));
        // Jobs, tasks and the surviving events still parsed.
        assert_eq!(lenient.trace.jobs.len(), 1);
        assert_eq!(lenient.trace.tasks.len(), 1);
        assert_eq!(lenient.trace.events.len(), 2);
        assert!(lenient.trace.machines.is_empty());
    }

    #[test]
    fn lenient_survives_truncation() {
        let trace = resubmitted_trace();
        let text = write_trace(&trace);
        // Chop the file at every possible byte boundary: never panic.
        for cut in 0..text.len() {
            let _ = read_trace_lenient(&text[..cut.min(text.len())]);
        }
    }

    #[test]
    fn sealed_trace_round_trips_and_verifies() {
        for trace in [
            sample_trace(),
            resubmitted_trace(),
            TraceBuilder::new("empty", 100).build().unwrap(),
        ] {
            let text = write_trace_sealed(&trace);
            assert_eq!(read_trace(&text).unwrap(), trace);
            assert_eq!(read_trace_verified(&text).unwrap(), trace);
            assert_eq!(read_trace_parallel(&text).unwrap(), trace);
            let lenient = read_trace_lenient(&text);
            assert!(lenient.warnings.is_empty());
            assert_eq!(lenient.trace, trace);
        }
    }

    #[test]
    fn verified_reader_requires_the_trailer() {
        let text = write_trace(&sample_trace());
        assert!(read_trace(&text).is_ok());
        let err = read_trace_verified(&text).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::Integrity);
        assert!(err.message.contains("missing #integrity"));
    }

    #[test]
    fn flipped_byte_fails_the_checksum() {
        let text = write_trace_sealed(&sample_trace());
        // 0.75 is the sample machine's memory capacity: a content change
        // that still parses as a valid float.
        let corrupt = text.replacen("0.75", "0.76", 1);
        let err = read_trace(&corrupt).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::Integrity);
        assert!(err.message.contains("checksum mismatch"), "{}", err.message);
        // Lenient mode keeps the records but reports the corruption.
        let lenient = read_trace_lenient(&corrupt);
        assert_eq!(lenient.warnings.len(), 1);
        assert_eq!(lenient.warnings[0].kind, ParseErrorKind::Integrity);
        assert_eq!(lenient.trace.machines.len(), 1);
    }

    #[test]
    fn truncated_sealed_trace_fails_counts_before_crc() {
        let text = write_trace_sealed(&sample_trace());
        // Drop the sample line (the last data line before the trailer).
        let cut: String = text
            .lines()
            .filter(|l| !l.starts_with("0.01,"))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = read_trace(&cut).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::Integrity);
        assert!(
            err.message.contains("samples count 0 != recorded 1"),
            "{}",
            err.message
        );
    }

    #[test]
    fn data_after_trailer_rejected() {
        let mut text = write_trace_sealed(&sample_trace());
        text.push_str("#machines\n");
        let err = read_trace(&text).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::Integrity);
        assert!(err.message.contains("after #integrity"));
    }

    #[test]
    fn malformed_and_unsupported_trailers_rejected() {
        for tail in [
            "#integrity\n",
            "#integrity v2 machines=0 jobs=0 tasks=0 events=0 samples=0 crc=0\n",
            "#integrity v1 machines=0 jobs=0\n",
            "#integrity v1 machines=0 jobs=0 tasks=0 events=0 samples=0 crc=zz\n",
        ] {
            let text = format!("#trace x 10\n{tail}");
            let err = read_trace(&text).unwrap_err();
            assert_eq!(err.kind, ParseErrorKind::Integrity, "{tail:?}");
        }
    }

    #[test]
    fn sealed_trace_survives_truncation_at_every_byte() {
        let text = write_trace_sealed(&resubmitted_trace());
        // Never panics, and strict verification never accepts a proper
        // prefix as complete. (Cutting only the final newline leaves the
        // content bit-for-bit intact, so that cut is excluded.)
        for cut in 0..text.len() - 1 {
            let _ = read_trace_lenient(&text[..cut]);
            assert!(
                read_trace_verified(&text[..cut]).is_err(),
                "cut={cut} accepted a truncated sealed trace"
            );
        }
        assert!(read_trace_verified(&text).is_ok());
    }

    /// Every input a reader test in this module exercises, plus a few
    /// extra torture cases — used to pin the streaming and parallel
    /// readers to the in-memory sequential one, error-for-error.
    fn equivalence_inputs() -> Vec<String> {
        let mut inputs = vec![
            write_trace(&sample_trace()),
            write_trace(&resubmitted_trace()),
            write_trace(&TraceBuilder::new("empty", 100).build().unwrap()),
        ];
        inputs.extend(
            [
                "",
                "#trace x 10\n",
                // Legacy nine-field task line.
                "#trace x 10\n#jobs\n0,0,1,0,-,0,0\n#tasks\n0,0,1,0,0.1,0.1,10,1,finished\n",
                // Data before any section header.
                "0,1,2,3\n",
                "#trace x 10\n0,1,2,3\n",
                // Header errors.
                "#trace\n",
                "#trace x\n",
                "#trace x ten\n",
                "#unknown\n",
                "#series 0 0 300\n",
                // Per-line syntax errors.
                "#trace x 10\n#machines\n0,0.5\n",
                "#trace x 10\n#machines\n1,0.5,0.5,1\n",
                "#trace x 10\n#machines\nx,0.5,0.5,1\n",
                "#trace x 10\n#machines\n0,nope,0.5,1\n",
                "#trace x 10\n#machines\n0,NaN,1,1\n",
                "#trace x 10\n#jobs\n0,0,99,0,-,0,0\n",
                "#trace x 10\n#tasks\n0,5,1,0,0.1,0.1,10,1,finished\n",
                "#trace x 10\n#events\n1,7,-,submit\n",
                "#trace x 10\n#events\n1,0,-,explode\n",
                "#trace x 10\n#jobs\n0,0,1,0,-,0,0\n#tasks\n\
                 0,0,1,0,0.1,0.1,0,0,0,unfinished\n#events\n5,0,0,schedule\n",
                // Within-line error behind a state check: the unknown-task
                // check must fire before the bad-time error.
                "#trace x 10\n#events\nbadtime,7,-,submit\n",
                // Series errors.
                "#trace x 10\n#series 3 0 300\n",
                "#trace x 10\n#machines\n0,1,1,1\n#series bad 0 300\n0,0,0,0,0,0,0,0,0,0\n",
                "#trace x 10\n#machines\n0,1,1,1\n#series 0 0 300\n0,0,bad,0,0,0,0,0,0,0\n",
                "#trace x 10\n#machines\n0,1,1,1\n#series 0 0 300\n0,0,0\n",
                // Broken machine line shadowing a series header that the
                // raw line count would accept.
                "#trace x 10\n#machines\n0,1,1,1\nbroken\n#series 1 0 300\n0,0,0,0,0,0,0,0,0,0\n",
            ]
            .into_iter()
            .map(String::from),
        );
        // Blank and whitespace-only lines sprinkled in.
        inputs.push(write_trace(&sample_trace()).replace("#jobs", "\n  \n#jobs\n"));
        // Integrity trailers: valid, corrupted content, truncated content,
        // bad counts, malformed, duplicated, and trailing data.
        let sealed = write_trace_sealed(&sample_trace());
        inputs.push(sealed.clone());
        inputs.push(write_trace_sealed(&resubmitted_trace()));
        inputs.push(write_trace_sealed(
            &TraceBuilder::new("empty", 100).build().unwrap(),
        ));
        inputs.push(sealed.replacen("0.75", "0.76", 1));
        inputs.push(
            sealed
                .lines()
                .filter(|l| !l.starts_with("0.01,"))
                .map(|l| format!("{l}\n"))
                .collect(),
        );
        inputs.push(format!("{sealed}#machines\n"));
        inputs.push(format!("{sealed}{sealed}"));
        inputs.push("#integrity\n".into());
        inputs.push(
            "#trace x 10\n#integrity v1 machines=9 jobs=0 tasks=0 events=0 samples=0 crc=0\n"
                .into(),
        );
        inputs.push(
            "#trace x 10\n#integrity v2 machines=0 jobs=0 tasks=0 events=0 samples=0 crc=0\n"
                .into(),
        );
        // A corrupt data line *and* a consequently stale trailer: the data
        // error must win in every reader.
        inputs.push(sealed.replacen("#machines\n0,", "#machines\nbroken\n0,", 1));
        inputs
    }

    #[test]
    fn streaming_reader_matches_in_memory_reader() {
        for text in equivalence_inputs() {
            assert_eq!(
                read_trace_from(text.as_bytes()),
                read_trace(&text),
                "strict streaming diverged on {text:?}"
            );
            assert_eq!(
                read_trace_lenient_from(text.as_bytes()),
                read_trace_lenient(&text),
                "lenient streaming diverged on {text:?}"
            );
        }
    }

    #[test]
    fn parallel_reader_matches_sequential_reader() {
        for text in equivalence_inputs() {
            assert_eq!(
                read_trace_parallel(&text),
                read_trace(&text),
                "parallel reader diverged on {text:?}"
            );
        }
    }

    #[test]
    fn streaming_reader_reports_io_errors_as_parse_errors() {
        struct FailAfter<'a>(&'a [u8]);
        impl std::io::Read for FailAfter<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0.is_empty() {
                    return Err(std::io::Error::other("disk on fire"));
                }
                let n = self.0.len().min(buf.len());
                buf[..n].copy_from_slice(&self.0[..n]);
                self.0 = &self.0[n..];
                Ok(n)
            }
        }
        let text = write_trace(&sample_trace());
        let reader = std::io::BufReader::with_capacity(16, FailAfter(text.as_bytes()));
        let err = read_trace_from(reader).unwrap_err();
        assert!(err.message.contains("read error"), "{}", err.message);
        // Lenient mode records the failure and keeps what it already has.
        let reader = std::io::BufReader::with_capacity(16, FailAfter(text.as_bytes()));
        let lenient = read_trace_lenient_from(reader);
        assert!(lenient
            .warnings
            .iter()
            .any(|w| w.message.contains("read error")));
    }
}
