//! Deterministic I/O fault injection for robustness testing.
//!
//! The chaos harness wraps readers and writers with seed-driven fault
//! plans — truncation at byte *N*, a flipped bit, short reads, a read
//! error mid-stream, an interrupted write — so tests can drive every
//! ingest and persist path through the failure modes a real deployment
//! meets (torn writes, bit rot, flaky NFS) and assert one invariant:
//! **every injected fault ends in a clean typed error or a documented
//! salvage, never a panic or silently wrong output.**
//!
//! Plans are pure functions of a seed (a SplitMix64 stream, no
//! dependency on the `rand` crate), so a failing case from the seeded
//! matrix in `tests/chaos.rs` reproduces exactly from its seed.

use std::io::{self, Read, Write};

/// SplitMix64: a tiny, well-distributed PRNG for fault-plan generation.
/// Not used anywhere near the simulation's RNG streams.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// One injected I/O fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The stream ends cleanly after `at` bytes (a torn file).
    Truncate {
        /// Bytes delivered before the premature EOF.
        at: usize,
    },
    /// One bit of byte `at` is flipped (bit rot).
    BitFlip {
        /// Byte offset of the corrupted byte.
        at: usize,
        /// Which bit (0–7) flips.
        bit: u8,
    },
    /// Every `read` returns at most `max` bytes (a dribbling socket or
    /// pipe); the content itself is intact.
    ShortReads {
        /// Per-call byte cap (at least 1).
        max: usize,
    },
    /// The reader fails with an I/O error after `at` bytes.
    ReadError {
        /// Bytes delivered before the error.
        at: usize,
    },
    /// The writer fails with an I/O error after accepting `at` bytes (a
    /// full disk, a yanked cable).
    InterruptWrite {
        /// Bytes accepted before the error.
        at: usize,
    },
}

/// A deterministic, seed-derived fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed the plan was derived from, for reproduction.
    pub seed: u64,
    /// The fault to inject.
    pub fault: Fault,
}

impl FaultPlan {
    /// Derives the plan for `seed` against a stream of `len` bytes. The
    /// fault class cycles with the seed so a contiguous seed range covers
    /// the whole matrix; positions land anywhere in `0..len`.
    pub fn from_seed(seed: u64, len: usize) -> FaultPlan {
        let mut rng = SplitMix64::new(seed);
        let at = rng.below(len as u64) as usize;
        let fault = match seed % 5 {
            0 => Fault::Truncate { at },
            1 => Fault::BitFlip {
                at,
                bit: (rng.below(8)) as u8,
            },
            2 => Fault::ShortReads {
                max: 1 + rng.below(7) as usize,
            },
            3 => Fault::ReadError { at },
            _ => Fault::InterruptWrite { at },
        };
        FaultPlan { seed, fault }
    }
}

/// Applies the byte-level faults (truncation, bit flip) to a buffer —
/// the in-memory equivalent of reading through a [`ChaosReader`].
/// Stream-level faults (short reads, read errors, interrupted writes)
/// leave the bytes unchanged.
pub fn corrupt(bytes: &[u8], fault: Fault) -> Vec<u8> {
    let mut out = bytes.to_vec();
    match fault {
        Fault::Truncate { at } => out.truncate(at),
        Fault::BitFlip { at, bit } => {
            if let Some(b) = out.get_mut(at) {
                *b ^= 1 << (bit & 7);
            }
        }
        Fault::ShortReads { .. } | Fault::ReadError { .. } | Fault::InterruptWrite { .. } => {}
    }
    out
}

/// A reader that injects its fault plan into an inner reader.
pub struct ChaosReader<R> {
    inner: R,
    fault: Fault,
    pos: usize,
}

impl<R: Read> ChaosReader<R> {
    /// Wraps `inner` with the given fault.
    pub fn new(inner: R, fault: Fault) -> Self {
        ChaosReader {
            inner,
            fault,
            pos: 0,
        }
    }
}

impl<R: Read> Read for ChaosReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let cap = match self.fault {
            Fault::Truncate { at } => {
                if self.pos >= at {
                    return Ok(0);
                }
                buf.len().min(at - self.pos)
            }
            Fault::ReadError { at } => {
                if self.pos >= at {
                    return Err(io::Error::other(format!(
                        "injected read fault at byte {at}"
                    )));
                }
                buf.len().min(at - self.pos)
            }
            Fault::ShortReads { max } => buf.len().min(max.max(1)),
            _ => buf.len(),
        };
        let n = self.inner.read(&mut buf[..cap])?;
        if let Fault::BitFlip { at, bit } = self.fault {
            if (self.pos..self.pos + n).contains(&at) {
                buf[at - self.pos] ^= 1 << (bit & 7);
            }
        }
        self.pos += n;
        Ok(n)
    }
}

/// A writer that accepts a byte budget and then fails, leaving whatever
/// prefix it already wrote — the model of a torn write.
pub struct ChaosWriter<W> {
    inner: W,
    fault: Fault,
    written: usize,
}

impl<W: Write> ChaosWriter<W> {
    /// Wraps `inner` with the given fault (only
    /// [`Fault::InterruptWrite`] has any effect on a writer).
    pub fn new(inner: W, fault: Fault) -> Self {
        ChaosWriter {
            inner,
            fault,
            written: 0,
        }
    }
}

impl<W: Write> Write for ChaosWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let Fault::InterruptWrite { at } = self.fault {
            if self.written >= at {
                return Err(io::Error::other(format!(
                    "injected write fault at byte {at}"
                )));
            }
            let n = self.inner.write(&buf[..buf.len().min(at - self.written)])?;
            self.written += n;
            return Ok(n);
        }
        let n = self.inner.write(buf)?;
        self.written += n;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        for seed in 0..32 {
            assert_eq!(
                FaultPlan::from_seed(seed, 1000),
                FaultPlan::from_seed(seed, 1000)
            );
        }
    }

    #[test]
    fn truncating_reader_matches_corrupt() {
        let data: Vec<u8> = (0..=255u8).collect();
        let fault = Fault::Truncate { at: 100 };
        let mut via_reader = Vec::new();
        ChaosReader::new(&data[..], fault)
            .read_to_end(&mut via_reader)
            .unwrap();
        assert_eq!(via_reader, corrupt(&data, fault));
        assert_eq!(via_reader.len(), 100);
    }

    #[test]
    fn bit_flip_reader_matches_corrupt() {
        let data: Vec<u8> = (0..=255u8).collect();
        let fault = Fault::BitFlip { at: 17, bit: 3 };
        let mut via_reader = Vec::new();
        // Small reads so the flip lands mid-buffer at least once.
        let mut r = ChaosReader::new(&data[..], fault);
        let mut buf = [0u8; 5];
        loop {
            let n = r.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            via_reader.extend_from_slice(&buf[..n]);
        }
        assert_eq!(via_reader, corrupt(&data, fault));
        assert_eq!(via_reader[17], data[17] ^ 0b1000);
    }

    #[test]
    fn short_reads_deliver_everything() {
        let data: Vec<u8> = (0..=255u8).collect();
        let mut out = Vec::new();
        ChaosReader::new(&data[..], Fault::ShortReads { max: 3 })
            .read_to_end(&mut out)
            .unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn read_error_fires_at_position() {
        let data = [7u8; 64];
        let mut out = Vec::new();
        let err = ChaosReader::new(&data[..], Fault::ReadError { at: 10 })
            .read_to_end(&mut out)
            .unwrap_err();
        assert!(err.to_string().contains("injected read fault"));
    }

    #[test]
    fn interrupted_writer_keeps_prefix_then_fails() {
        let mut sink = Vec::new();
        let mut w = ChaosWriter::new(&mut sink, Fault::InterruptWrite { at: 4 });
        assert_eq!(w.write(b"abc").unwrap(), 3);
        assert_eq!(w.write(b"defg").unwrap(), 1);
        assert!(w.write(b"hij").is_err());
        assert_eq!(sink, b"abcd");
    }
}
