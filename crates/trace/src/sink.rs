//! Record-sink seam: fan trace records out to any consumer.
//!
//! The simulator used to have exactly one output shape — a materialized
//! [`Trace`] that callers serialized to disk and immediately re-read for
//! characterization. This module inverts that coupling: a [`RecordSink`]
//! is a push-style observer of trace records in **canonical file order**
//! (header, machines, jobs, tasks, events, usage series), and
//! [`emit_trace`] fans one walk of a trace out to any number of sinks —
//! a file writer, an in-memory [`BatchSource`](crate::BatchSource)
//! adapter, or both at once:
//!
//! ```text
//! roundtrip: sim ─▶ Trace ─write──▶ file ──read/parse──▶ batches ─▶ passes
//! fused:     sim ─▶ Trace ─emit_trace─▶ BatchChannelSink ─▶ SimBatches ─▶ passes
//!                          └────────▶ TextWriterSink ─▶ file   (optional fan-out)
//! ```
//!
//! Two sinks ship here:
//!
//! * [`TextWriterSink`] re-implements the sectioned-CSV writer as a
//!   streaming consumer, byte-identical to
//!   [`write_trace`](crate::io::write_trace) /
//!   [`write_trace_sealed`](crate::io::write_trace_sealed) (it shares the
//!   per-record formatters and the CRC scheme).
//! * [`BatchChannelSink`] + [`SimBatches`] bridge a producer thread into
//!   the streaming characterization loop over a **bounded** channel of
//!   [`TraceBatch`]es, so `cgc_core::characterize_batches` ingests live
//!   simulator output with no trace file in between. Memory stays
//!   bounded by `capacity × batch_records` records regardless of trace
//!   size.
//!
//! # Ordering guarantee
//!
//! [`emit_trace`] visits records exactly in the order the text writer
//! lays them out, which is also the order every [`BatchSource`] yields
//! them — so a fused consumer observes the *same record sequence* as a
//! file-roundtrip consumer, and (because the analysis passes are
//! batch-boundary invariant) produces a byte-identical report.
//!
//! # Failure model
//!
//! Every sink method returns `Result<(), SinkError>`. A sink whose
//! consumer hung up reports [`SinkError::Closed`]; a writer-backed sink
//! surfaces the I/O error. Producers must treat any error as fatal for
//! that emission and propagate it — never retry into a dead channel.
//! Conversely, if the producer side drops without calling
//! [`RecordSink::finish`] (a crash, an early error), [`SimBatches`]
//! yields a typed [`ParseError`] instead of hanging: the bounded channel
//! disconnects, so neither side can deadlock on the other's absence.
//!
//! [`BatchSource`]: crate::BatchSource

use crate::integrity::Crc32;
use crate::io::{
    push_event_line, push_job_line, push_machine_line, push_sample_line, push_task_line, ParseError,
};
use crate::job::JobRecord;
use crate::machine::MachineRecord;
use crate::stream::{BatchSource, TraceBatch};
use crate::task::{TaskEvent, TaskRecord};
use crate::trace::Trace;
use crate::usage::HostSeries;
use std::fmt::Write as _;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

/// Why a [`RecordSink`] could not accept more records.
#[derive(Debug)]
pub enum SinkError {
    /// The underlying writer failed.
    Io(std::io::Error),
    /// The consumer end of the sink hung up before the stream finished
    /// (e.g. the characterization side of a fused pipeline dropped its
    /// receiver). The emission cannot make progress and must abort.
    Closed,
}

impl std::fmt::Display for SinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SinkError::Io(e) => write!(f, "sink write failed: {e}"),
            SinkError::Closed => write!(f, "record sink closed by its consumer"),
        }
    }
}

impl std::error::Error for SinkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SinkError::Io(e) => Some(e),
            SinkError::Closed => None,
        }
    }
}

impl From<std::io::Error> for SinkError {
    fn from(e: std::io::Error) -> Self {
        SinkError::Io(e)
    }
}

/// A push-style consumer of trace records in canonical file order.
///
/// Callers drive a sink through exactly one session:
/// [`begin`](Self::begin) once, then zero or more calls to each of
/// [`machines`](Self::machines), [`jobs`](Self::jobs),
/// [`tasks`](Self::tasks), [`events`](Self::events) — grouped in that
/// order — then zero or more [`series`](Self::series), then
/// [`finish`](Self::finish) once. Within a section, calls may carry any
/// chunking of the records; concatenated they must equal the canonical
/// record sequence. [`emit_trace`] drives this protocol from a built
/// [`Trace`]; hand-rolled producers must follow it too.
pub trait RecordSink {
    /// Starts a session: the trace header (system name and horizon).
    fn begin(&mut self, system: &str, horizon: u64) -> Result<(), SinkError>;
    /// A chunk of machine records, in id order across calls.
    fn machines(&mut self, machines: &[MachineRecord]) -> Result<(), SinkError>;
    /// A chunk of job records, in id order across calls.
    fn jobs(&mut self, jobs: &[JobRecord]) -> Result<(), SinkError>;
    /// A chunk of task records, in id order across calls.
    fn tasks(&mut self, tasks: &[TaskRecord]) -> Result<(), SinkError>;
    /// A chunk of task events, in canonical (time, task) order across
    /// calls.
    fn events(&mut self, events: &[TaskEvent]) -> Result<(), SinkError>;
    /// One whole host usage series (header plus samples).
    fn series(&mut self, series: &HostSeries) -> Result<(), SinkError>;
    /// Ends the session. After `finish` returns the sink's output is
    /// complete; no further calls are legal.
    fn finish(&mut self) -> Result<(), SinkError>;
}

/// Walks a built trace in canonical file order, fanning every record out
/// to all `sinks`. Stops at the first sink error (remaining sinks are
/// left unfinished — their partial output must be discarded).
pub fn emit_trace(trace: &Trace, sinks: &mut [&mut dyn RecordSink]) -> Result<(), SinkError> {
    let _span = cgc_obs::span(cgc_obs::stages::EMIT);
    for s in sinks.iter_mut() {
        s.begin(&trace.system, trace.horizon)?;
    }
    for s in sinks.iter_mut() {
        s.machines(&trace.machines)?;
    }
    for s in sinks.iter_mut() {
        s.jobs(&trace.jobs)?;
    }
    for s in sinks.iter_mut() {
        s.tasks(&trace.tasks)?;
    }
    for s in sinks.iter_mut() {
        s.events(&trace.events)?;
    }
    for series in &trace.host_series {
        for s in sinks.iter_mut() {
            s.series(series)?;
        }
    }
    for s in sinks.iter_mut() {
        s.finish()?;
    }
    Ok(())
}

/// The four fixed section headers, in file order. [`TextWriterSink`]
/// tracks how many it has emitted so empty sections still get their
/// header, exactly like the whole-trace writer.
const SECTION_HEADERS: [&str; 4] = ["#machines", "#jobs", "#tasks", "#events"];

/// A [`RecordSink`] producing the sectioned-CSV text format into an
/// in-memory buffer, byte-identical to
/// [`write_trace`](crate::io::write_trace) (plain) or
/// [`write_trace_sealed`](crate::io::write_trace_sealed) (sealed: the
/// `#integrity` trailer is accumulated line-by-line as records stream
/// through, so sealing costs no second pass over the output).
pub struct TextWriterSink {
    out: String,
    seal: bool,
    crc: Crc32,
    headers_written: usize,
    machines: u64,
    jobs: u64,
    tasks: u64,
    events: u64,
    samples: u64,
    /// Scratch for one record line, reused so the CRC can hash exactly
    /// the line bytes without rescanning `out`.
    line: String,
}

impl TextWriterSink {
    /// A sink matching [`write_trace`](crate::io::write_trace) output.
    pub fn plain() -> Self {
        Self::new(false)
    }

    /// A sink matching [`write_trace_sealed`](crate::io::write_trace_sealed)
    /// output (with the `#integrity` trailer).
    pub fn sealed() -> Self {
        Self::new(true)
    }

    fn new(seal: bool) -> Self {
        TextWriterSink {
            out: String::new(),
            seal,
            crc: Crc32::new(),
            headers_written: 0,
            machines: 0,
            jobs: 0,
            tasks: 0,
            events: 0,
            samples: 0,
            line: String::new(),
        }
    }

    /// The serialized trace. Call after [`finish`](RecordSink::finish);
    /// earlier the buffer holds a prefix of the final output.
    pub fn into_string(self) -> String {
        self.out
    }

    /// Appends the scratch line (newline-terminated, never blank) to the
    /// output and folds it into the running checksum. The CRC hashes the
    /// trimmed line plus `\n`, matching the sealing reader/writer pair.
    fn commit_line(&mut self) {
        debug_assert!(self.line.ends_with('\n') && self.line.len() > 1);
        self.crc.update(self.line.trim().as_bytes());
        self.crc.update(b"\n");
        self.out.push_str(&self.line);
        self.line.clear();
    }

    /// Emits any fixed section headers up to and including `upto`, so
    /// sections with zero records still appear.
    fn headers_through(&mut self, upto: usize) {
        while self.headers_written <= upto {
            let _ = writeln!(self.line, "{}", SECTION_HEADERS[self.headers_written]);
            self.commit_line();
            self.headers_written += 1;
        }
    }
}

impl RecordSink for TextWriterSink {
    fn begin(&mut self, system: &str, horizon: u64) -> Result<(), SinkError> {
        let _ = writeln!(self.line, "#trace {system} {horizon}");
        self.commit_line();
        Ok(())
    }

    fn machines(&mut self, machines: &[MachineRecord]) -> Result<(), SinkError> {
        self.headers_through(0);
        for m in machines {
            push_machine_line(&mut self.line, m);
            self.commit_line();
        }
        self.machines += machines.len() as u64;
        Ok(())
    }

    fn jobs(&mut self, jobs: &[JobRecord]) -> Result<(), SinkError> {
        self.headers_through(1);
        for j in jobs {
            push_job_line(&mut self.line, j);
            self.commit_line();
        }
        self.jobs += jobs.len() as u64;
        Ok(())
    }

    fn tasks(&mut self, tasks: &[TaskRecord]) -> Result<(), SinkError> {
        self.headers_through(2);
        for t in tasks {
            push_task_line(&mut self.line, t);
            self.commit_line();
        }
        self.tasks += tasks.len() as u64;
        Ok(())
    }

    fn events(&mut self, events: &[TaskEvent]) -> Result<(), SinkError> {
        self.headers_through(3);
        for e in events {
            push_event_line(&mut self.line, e);
            self.commit_line();
        }
        self.events += events.len() as u64;
        Ok(())
    }

    fn series(&mut self, series: &HostSeries) -> Result<(), SinkError> {
        self.headers_through(3);
        let _ = writeln!(
            self.line,
            "#series {} {} {}",
            series.machine.0, series.start, series.period
        );
        self.commit_line();
        for sample in &series.samples {
            push_sample_line(&mut self.line, sample);
            self.commit_line();
        }
        self.samples += series.samples.len() as u64;
        Ok(())
    }

    fn finish(&mut self) -> Result<(), SinkError> {
        self.headers_through(3);
        if self.seal {
            // The trailer is excluded from its own checksum, so it goes
            // straight to `out` without passing through `commit_line`.
            let _ = writeln!(
                self.out,
                "#integrity v1 machines={} jobs={} tasks={} events={} samples={} crc={:08x}",
                self.machines,
                self.jobs,
                self.tasks,
                self.events,
                self.samples,
                self.crc.finalize()
            );
        }
        Ok(())
    }
}

/// Default bound on in-flight batches between a [`BatchChannelSink`]
/// producer and its [`SimBatches`] consumer. Deep enough to absorb
/// producer/consumer jitter, shallow enough that the fused pipeline's
/// working set stays a few batches — not a second copy of the trace.
pub const DEFAULT_CHANNEL_BATCHES: usize = 4;

enum SimMsg {
    Begin { system: String, horizon: u64 },
    Batch(TraceBatch),
    End,
}

/// Creates a connected producer/consumer pair bridging simulator output
/// into the streaming characterization loop.
///
/// The producer side ([`BatchChannelSink`]) accumulates records into
/// [`TraceBatch`]es of `batch_records` records and sends them over a
/// bounded channel holding at most `capacity` batches; when the channel
/// is full the producer blocks, so total buffering is bounded by
/// `(capacity + 1) × batch_records` records regardless of trace size.
/// The consumer side ([`SimBatches`]) implements
/// [`BatchSource`], so `characterize_batches` ingests it exactly like a
/// file-backed source.
///
/// # Panics
/// If `batch_records` or `capacity` is zero.
pub fn sim_batch_channel(batch_records: usize, capacity: usize) -> (BatchChannelSink, SimBatches) {
    assert!(batch_records > 0, "batch size must be positive");
    assert!(capacity > 0, "channel capacity must be positive");
    let (tx, rx) = sync_channel(capacity);
    (
        BatchChannelSink {
            tx,
            pending: TraceBatch::default(),
            batch_records,
        },
        SimBatches {
            rx,
            system: String::new(),
            horizon: 0,
            done: false,
        },
    )
}

/// The producer half of [`sim_batch_channel`]: a [`RecordSink`] that
/// chunks incoming records into [`TraceBatch`]es and sends them over the
/// bounded channel. Send blocks while the channel is full; if the
/// consumer hangs up, every subsequent call reports
/// [`SinkError::Closed`].
///
/// Dropping the sink without [`finish`](RecordSink::finish) disconnects
/// the channel, which the consumer surfaces as a typed parse error — an
/// aborted emission can never look like a complete trace.
pub struct BatchChannelSink {
    tx: SyncSender<SimMsg>,
    pending: TraceBatch,
    batch_records: usize,
}

impl BatchChannelSink {
    fn send(&self, msg: SimMsg) -> Result<(), SinkError> {
        self.tx.send(msg).map_err(|_| SinkError::Closed)
    }

    fn flush_if_full(&mut self) -> Result<(), SinkError> {
        if self.pending.records() >= self.batch_records as u64 {
            let batch = std::mem::take(&mut self.pending);
            self.send(SimMsg::Batch(batch))?;
        }
        Ok(())
    }

    /// Records the current batch still has room for.
    fn room(&self) -> usize {
        let pending = self.pending.records().min(self.batch_records as u64) as usize;
        (self.batch_records - pending).max(1)
    }
}

impl RecordSink for BatchChannelSink {
    fn begin(&mut self, system: &str, horizon: u64) -> Result<(), SinkError> {
        self.send(SimMsg::Begin {
            system: system.to_string(),
            horizon,
        })
    }

    fn machines(&mut self, machines: &[MachineRecord]) -> Result<(), SinkError> {
        let mut rest = machines;
        while !rest.is_empty() {
            let take = rest.len().min(self.room());
            self.pending.machines.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            self.flush_if_full()?;
        }
        Ok(())
    }

    fn jobs(&mut self, jobs: &[JobRecord]) -> Result<(), SinkError> {
        let mut rest = jobs;
        while !rest.is_empty() {
            let take = rest.len().min(self.room());
            self.pending.jobs.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            self.flush_if_full()?;
        }
        Ok(())
    }

    fn tasks(&mut self, tasks: &[TaskRecord]) -> Result<(), SinkError> {
        let mut rest = tasks;
        while !rest.is_empty() {
            let take = rest.len().min(self.room());
            self.pending.tasks.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            self.flush_if_full()?;
        }
        Ok(())
    }

    fn events(&mut self, events: &[TaskEvent]) -> Result<(), SinkError> {
        let mut rest = events;
        while !rest.is_empty() {
            let take = rest.len().min(self.room());
            self.pending.events.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            self.flush_if_full()?;
        }
        Ok(())
    }

    fn series(&mut self, series: &HostSeries) -> Result<(), SinkError> {
        // Samples are counted, not carried (the TraceBatch contract):
        // host-load analyses need whole series and never stream.
        let mut rest = series.samples.len() as u64;
        while rest > 0 {
            let take = rest.min(self.room() as u64);
            self.pending.samples += take;
            rest -= take;
            self.flush_if_full()?;
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<(), SinkError> {
        // The final batch is always sent, even when empty, so the
        // consumer sees at least one Ok batch — the BatchSource contract.
        let batch = std::mem::take(&mut self.pending);
        self.send(SimMsg::Batch(batch))?;
        self.send(SimMsg::End)
    }
}

/// The consumer half of [`sim_batch_channel`]: a [`BatchSource`] fed by
/// live simulator output instead of a file.
///
/// `bytes_read` is always zero — no storage backs this source; a fused
/// pipeline's byte accounting belongs to whatever file sinks ran
/// alongside, not to the in-memory leg.
pub struct SimBatches {
    rx: Receiver<SimMsg>,
    system: String,
    horizon: u64,
    done: bool,
}

impl BatchSource for SimBatches {
    fn next_batch(&mut self) -> Option<Result<TraceBatch, ParseError>> {
        if self.done {
            return None;
        }
        loop {
            match self.rx.recv() {
                Ok(SimMsg::Begin { system, horizon }) => {
                    self.system = system;
                    self.horizon = horizon;
                }
                Ok(SimMsg::Batch(batch)) => return Some(Ok(batch)),
                Ok(SimMsg::End) => {
                    self.done = true;
                    return None;
                }
                Err(_) => {
                    // Producer dropped without `finish`: the emission
                    // died mid-stream. Surface a typed error exactly like
                    // a truncated file would.
                    self.done = true;
                    return Some(Err(ParseError::io(
                        0,
                        "simulator stream closed before finish",
                    )));
                }
            }
        }
    }

    fn system(&self) -> &str {
        &self.system
    }

    fn horizon(&self) -> u64 {
        self.horizon
    }

    fn bytes_read(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{write_trace, write_trace_sealed};
    use crate::priority::Priority;
    use crate::resources::Demand;
    use crate::task::TaskEventKind;
    use crate::trace::TraceBuilder;
    use crate::usage::UsageSample;
    use crate::UserId;

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new("sink-test", 7_200);
        let m0 = b.add_machine(0.5, 0.75, 1.0);
        let _m1 = b.add_machine(1.0, 1.0, 1.0);
        for ji in 0..6u64 {
            let j = b.add_job(UserId(ji as u32), Priority::from_level(4), ji * 60);
            b.set_job_usage(j, 10.0 * (ji + 1) as f64, 0.01);
            for _ in 0..3 {
                let t = b.add_task(j, Demand::new(0.02, 0.01));
                b.push_event(TaskEvent {
                    time: ji * 60,
                    task: t,
                    machine: None,
                    kind: TaskEventKind::Submit,
                });
                b.push_event(TaskEvent {
                    time: ji * 60 + 5,
                    task: t,
                    machine: Some(m0),
                    kind: TaskEventKind::Schedule,
                });
            }
        }
        let mut series = HostSeries::new(m0, 0, 300);
        series.samples = vec![UsageSample::default(); 5];
        b.add_host_series(series);
        b.build().expect("legal event sequence")
    }

    #[test]
    fn text_sink_matches_whole_trace_writer() {
        let trace = sample_trace();
        let mut plain = TextWriterSink::plain();
        let mut sealed = TextWriterSink::sealed();
        emit_trace(&trace, &mut [&mut plain, &mut sealed]).unwrap();
        assert_eq!(plain.into_string(), write_trace(&trace));
        assert_eq!(sealed.into_string(), write_trace_sealed(&trace));
    }

    /// An empty trace still gets every section header (and a valid
    /// trailer), exactly like the whole-trace writer.
    #[test]
    fn text_sink_matches_writer_on_empty_trace() {
        let trace = TraceBuilder::new("empty", 0).build().unwrap();
        let mut sealed = TextWriterSink::sealed();
        emit_trace(&trace, &mut [&mut sealed]).unwrap();
        assert_eq!(sealed.into_string(), write_trace_sealed(&trace));
    }

    /// Channel-delivered batches concatenate to exactly the canonical
    /// record sequence, for pathological and huge batch sizes alike.
    #[test]
    fn channel_batches_concatenate_to_the_trace() {
        let trace = sample_trace();
        for batch_records in [1, 3, 1 << 20] {
            let (mut sink, mut source) = sim_batch_channel(batch_records, 2);
            let t = trace.clone();
            std::thread::scope(|s| {
                s.spawn(move || emit_trace(&t, &mut [&mut sink]).unwrap());
                let mut machines = Vec::new();
                let mut jobs = Vec::new();
                let mut tasks = Vec::new();
                let mut events = Vec::new();
                let mut samples = 0u64;
                while let Some(batch) = source.next_batch() {
                    let batch = batch.expect("clean emission");
                    machines.extend(batch.machines);
                    jobs.extend(batch.jobs);
                    tasks.extend(batch.tasks);
                    events.extend(batch.events);
                    samples += batch.samples;
                }
                assert_eq!(source.system(), trace.system);
                assert_eq!(source.horizon(), trace.horizon);
                assert_eq!(machines, trace.machines);
                assert_eq!(jobs, trace.jobs);
                assert_eq!(tasks, trace.tasks);
                assert_eq!(events, trace.events);
                assert_eq!(
                    samples,
                    trace
                        .host_series
                        .iter()
                        .map(|s| s.samples.len() as u64)
                        .sum::<u64>()
                );
            });
        }
    }

    /// Small batch sizes actually chunk: no batch (except possibly ones
    /// forced by a single oversized record group) exceeds the bound.
    #[test]
    fn channel_batches_respect_the_size_bound() {
        let trace = sample_trace();
        let (mut sink, mut source) = sim_batch_channel(4, 2);
        let t = trace.clone();
        std::thread::scope(|s| {
            s.spawn(move || emit_trace(&t, &mut [&mut sink]).unwrap());
            let mut n = 0u64;
            while let Some(batch) = source.next_batch() {
                let batch = batch.unwrap();
                assert!(batch.records() <= 4, "batch of {} records", batch.records());
                n += batch.records();
            }
            assert!(n > 0);
        });
    }

    /// Producer dropped mid-stream (no `finish`): the consumer gets a
    /// typed error, then end of stream — never a hang. Capacity is deep
    /// enough that the single-threaded producer never blocks here.
    #[test]
    fn dropped_producer_surfaces_a_typed_error() {
        let trace = sample_trace();
        let (mut sink, mut source) = sim_batch_channel(2, 8);
        sink.begin(&trace.system, trace.horizon).unwrap();
        sink.machines(&trace.machines).unwrap();
        drop(sink);
        let mut saw_err = false;
        while let Some(batch) = source.next_batch() {
            match batch {
                Ok(_) => assert!(!saw_err, "no batches after the error"),
                Err(e) => {
                    assert_eq!(e.kind, crate::io::ParseErrorKind::Io);
                    saw_err = true;
                }
            }
        }
        assert!(saw_err, "a dropped producer must surface an error");
        assert!(source.next_batch().is_none());
    }

    /// Consumer hung up: the producer's next send reports `Closed`
    /// instead of blocking forever.
    #[test]
    fn dropped_consumer_reports_closed() {
        let trace = sample_trace();
        let (mut sink, source) = sim_batch_channel(1, 1);
        drop(source);
        let err = emit_trace(&trace, &mut [&mut sink]).expect_err("consumer is gone");
        assert!(matches!(err, SinkError::Closed));
    }

    /// An empty trace still delivers one (empty) batch — the BatchSource
    /// contract every consumer relies on.
    #[test]
    fn empty_trace_yields_one_empty_batch() {
        let trace = TraceBuilder::new("empty", 0).build().unwrap();
        let (mut sink, mut source) = sim_batch_channel(8, 1);
        std::thread::scope(|s| {
            s.spawn(move || emit_trace(&trace, &mut [&mut sink]).unwrap());
            let first = source.next_batch().expect("one batch").expect("clean");
            assert!(first.is_empty());
            assert!(source.next_batch().is_none());
            assert_eq!(source.system(), "empty");
        });
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_panics() {
        let _ = sim_batch_channel(0, 1);
    }

    #[test]
    #[should_panic(expected = "channel capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = sim_batch_channel(1, 0);
    }
}
