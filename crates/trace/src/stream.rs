//! Record-batch streaming over the sectioned-CSV trace format.
//!
//! [`TraceBatches`] parses a trace incrementally from any
//! [`BufRead`](std::io::BufRead) and yields [`TraceBatch`]es of records
//! instead of one materialized [`Trace`](crate::Trace) — the out-of-core
//! ingestion path behind `analyze_trace --stream`. Memory stays bounded
//! by the batch size (plus one life-cycle state per task, kept so the
//! event log is validated exactly as strictly as [`read_trace`]):
//!
//! ```text
//! whole-trace:  file ──read_trace──▶ Trace ──▶ analyses
//! streaming:    file ──TraceBatches──▶ batch ▶ batch ▶ … ──▶ passes
//! ```
//!
//! Parsing is strict and byte-for-byte equivalent to
//! [`read_trace_from`](crate::read_trace_from): the same lines are
//! accepted, the first malformed line aborts the stream with the same
//! [`ParseError`] (message included), and the concatenated batches hold
//! exactly the records the whole-trace reader would return. The one
//! intentional difference: `JobRecord::tasks` back-references are only
//! populated while the owning job is still in the current batch —
//! consumers of batches must not rely on them.
//!
//! [`read_trace`]: crate::read_trace

use crate::io::{IngestTally, LineParser, ParseError, ParserState};
use crate::job::JobRecord;
use crate::machine::MachineRecord;
use crate::task::{TaskEvent, TaskRecord};
use std::io::BufRead;

/// Default batch size, in records. Large enough that per-batch overhead
/// (vector reallocation, pass dispatch) is negligible, small enough that
/// a batch is a rounding error next to a materialized trace.
pub const DEFAULT_BATCH_RECORDS: usize = 64 * 1024;

/// One chunk of parsed trace records, in file order.
///
/// Ids are globally dense across the whole stream, so a record in batch
/// *n* may reference a record from any earlier batch (a task its job, an
/// event its task). Usage samples are counted, not carried: the streaming
/// analyses are workload-side only, and host-load analyses need whole
/// series anyway (they fall back to the in-memory path).
#[derive(Debug, Clone, Default)]
pub struct TraceBatch {
    /// Machines declared in this chunk.
    pub machines: Vec<MachineRecord>,
    /// Jobs declared in this chunk. `JobRecord::tasks` is only populated
    /// for tasks that appeared in the same chunk — do not rely on it.
    pub jobs: Vec<JobRecord>,
    /// Tasks declared in this chunk.
    pub tasks: Vec<TaskRecord>,
    /// Task events logged in this chunk.
    pub events: Vec<TaskEvent>,
    /// Host usage samples seen (and dropped) in this chunk.
    pub samples: u64,
}

impl TraceBatch {
    /// Total records in the batch, samples included.
    ///
    /// Returned as `u64`: `samples` is a count, not a vector length, so
    /// casting it to `usize` would truncate on 32-bit targets and the sum
    /// could overflow. Saturating adds keep the result well-defined even
    /// for adversarial counts.
    pub fn records(&self) -> u64 {
        (self.machines.len() as u64)
            .saturating_add(self.jobs.len() as u64)
            .saturating_add(self.tasks.len() as u64)
            .saturating_add(self.events.len() as u64)
            .saturating_add(self.samples)
    }

    /// True when the batch carries no records at all.
    pub fn is_empty(&self) -> bool {
        self.records() == 0
    }
}

/// A source of [`TraceBatch`]es, abstracting over the storage format.
///
/// Implemented by [`TraceBatches`] (sectioned CSV off any `BufRead`) and
/// [`ColumnarBatches`](crate::columnar::ColumnarBatches) (binary columnar
/// container over mapped bytes), so streaming consumers — most notably
/// `characterize_stream` in `cgc-core` — are written once against this
/// trait and ingest either format.
///
/// Contract, shared with the iterators' own documentation: batches arrive
/// in record order; iteration ends after the first `Err`; every
/// well-formed source yields at least one `Ok` batch (possibly empty), so
/// [`system`](Self::system)/[`horizon`](Self::horizon) are reliable once
/// `next_batch` returns `None`.
pub trait BatchSource {
    /// Yields the next batch, `None` once the source is exhausted (or
    /// after it has reported an error).
    fn next_batch(&mut self) -> Option<Result<TraceBatch, ParseError>>;

    /// The system name from the trace header (empty until parsed).
    fn system(&self) -> &str;

    /// The horizon from the trace header (`0` until parsed).
    fn horizon(&self) -> u64;

    /// Bytes consumed from the underlying storage so far.
    fn bytes_read(&self) -> u64;
}

impl<R: BufRead> BatchSource for TraceBatches<R> {
    fn next_batch(&mut self) -> Option<Result<TraceBatch, ParseError>> {
        self.next()
    }

    fn system(&self) -> &str {
        TraceBatches::system(self)
    }

    fn horizon(&self) -> u64 {
        TraceBatches::horizon(self)
    }

    fn bytes_read(&self) -> u64 {
        TraceBatches::bytes_read(self)
    }
}

/// Strict streaming parser yielding [`TraceBatch`]es.
///
/// Iteration ends after the first `Err` (the stream is not resumable past
/// a malformed line, mirroring strict [`read_trace`](crate::read_trace))
/// or after the final batch at end of input. The final batch is always
/// emitted, even when empty, so every well-formed stream yields at least
/// one `Ok` item and [`system`](Self::system)/[`horizon`](Self::horizon)
/// are reliable once iteration finishes.
pub struct TraceBatches<R: BufRead> {
    reader: R,
    st: ParserState,
    batch_records: usize,
    buf: String,
    line_no: usize,
    tally: IngestTally,
    done: bool,
}

impl<R: BufRead> TraceBatches<R> {
    /// Streams batches of [`DEFAULT_BATCH_RECORDS`] records.
    pub fn new(reader: R) -> Self {
        Self::with_batch_records(reader, DEFAULT_BATCH_RECORDS)
    }

    /// Streams batches of at least `batch_records` records (the final
    /// batch may be smaller).
    ///
    /// # Panics
    /// If `batch_records` is zero.
    pub fn with_batch_records(reader: R, batch_records: usize) -> Self {
        assert!(batch_records > 0, "batch size must be positive");
        TraceBatches {
            reader,
            st: ParserState::new(),
            batch_records,
            buf: String::new(),
            line_no: 0,
            tally: IngestTally::new(),
            done: false,
        }
    }

    /// The system name from the `#trace` header — empty until that header
    /// has been parsed (it precedes all records, so any yielded non-empty
    /// batch implies the name is final).
    pub fn system(&self) -> &str {
        self.st.system()
    }

    /// The horizon from the `#trace` header; `0` until parsed.
    pub fn horizon(&self) -> u64 {
        self.st.horizon()
    }

    /// Bytes consumed from the reader so far.
    pub fn bytes_read(&self) -> u64 {
        self.tally.bytes
    }
}

impl<R: BufRead> Iterator for TraceBatches<R> {
    type Item = Result<TraceBatch, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            self.buf.clear();
            self.line_no += 1;
            match self.reader.read_line(&mut self.buf) {
                Ok(0) => {
                    self.done = true;
                    return Some(Ok(self.st.drain_batch()));
                }
                Ok(n) => self.tally.bytes += n as u64,
                Err(e) => {
                    // Same contract as the whole-trace readers: stream
                    // position is unreliable after a read error, so
                    // report and stop.
                    self.done = true;
                    return Some(Err(ParseError::io(
                        self.line_no,
                        format!("read error: {e}"),
                    )));
                }
            }
            let line = self.buf.trim();
            if line.is_empty() {
                continue;
            }
            self.tally.lines += 1;
            let p = LineParser {
                line_no: self.line_no,
                line,
            };
            if let Err(e) = self.st.line(&p, line) {
                self.done = true;
                return Some(Err(e));
            }
            if self.st.pending_records() >= self.batch_records {
                return Some(Ok(self.st.drain_batch()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{read_trace, write_trace};
    use crate::priority::Priority;
    use crate::resources::Demand;
    use crate::task::{TaskEvent, TaskEventKind};
    use crate::trace::TraceBuilder;
    use crate::usage::UsageSample;
    use crate::UserId;

    fn sample_trace() -> crate::Trace {
        let mut b = TraceBuilder::new("stream-test", 7_200);
        let m0 = b.add_machine(0.5, 0.75, 1.0);
        let _m1 = b.add_machine(1.0, 1.0, 1.0);
        let mut last_task = None;
        for ji in 0..5u64 {
            let j = b.add_job(UserId(ji as u32), Priority::from_level(4), ji * 60);
            b.set_job_usage(j, 10.0 * (ji + 1) as f64, 0.01);
            for _ in 0..3 {
                let t = b.add_task(j, Demand::new(0.02, 0.01));
                b.push_event(TaskEvent {
                    time: ji * 60,
                    task: t,
                    machine: None,
                    kind: TaskEventKind::Submit,
                });
                b.push_event(TaskEvent {
                    time: ji * 60 + 5,
                    task: t,
                    machine: Some(m0),
                    kind: TaskEventKind::Schedule,
                });
                last_task = Some(t);
            }
        }
        b.push_event(TaskEvent {
            time: 400,
            task: last_task.unwrap(),
            machine: Some(m0),
            kind: TaskEventKind::Finish,
        });
        let mut series = crate::usage::HostSeries::new(m0, 0, 300);
        series.samples = vec![UsageSample::default(); 4];
        b.add_host_series(series);
        b.build().expect("legal event sequence")
    }

    /// Concatenated batches must equal the whole-trace reader's records,
    /// for every batch size — including pathological size 1.
    #[test]
    fn batches_concatenate_to_the_full_trace() {
        let trace = sample_trace();
        let text = write_trace(&trace);
        let whole = read_trace(&text).unwrap();
        for batch_records in [1, 3, 7, 1 << 20] {
            let mut it =
                TraceBatches::with_batch_records(std::io::Cursor::new(&text), batch_records);
            let mut machines = Vec::new();
            let mut jobs = Vec::new();
            let mut tasks = Vec::new();
            let mut events = Vec::new();
            let mut samples = 0;
            for batch in &mut it {
                let batch = batch.expect("well-formed trace");
                machines.extend(batch.machines);
                jobs.extend(batch.jobs);
                tasks.extend(batch.tasks);
                events.extend(batch.events);
                samples += batch.samples;
            }
            assert_eq!(it.system(), whole.system);
            assert_eq!(it.horizon(), whole.horizon);
            assert_eq!(machines, whole.machines);
            assert_eq!(tasks, whole.tasks);
            assert_eq!(events, whole.events);
            assert_eq!(
                samples,
                whole
                    .host_series
                    .iter()
                    .map(|s| s.samples.len() as u64)
                    .sum::<u64>()
            );
            // Jobs match except for the documented `tasks` back-reference.
            assert_eq!(jobs.len(), whole.jobs.len());
            for (a, b) in jobs.iter().zip(&whole.jobs) {
                let mut a = a.clone();
                a.tasks = b.tasks.clone();
                assert_eq!(&a, b);
            }
        }
    }

    /// The streaming parser rejects exactly what the strict reader
    /// rejects, with an identical error.
    #[test]
    fn errors_match_the_strict_reader() {
        let trace = sample_trace();
        let good = write_trace(&trace);
        let corruptions = [
            ("0,bogus,0.75,1.0", "#machines"),
            ("9,0,4,0,0.02,0.01,60,1,0,finished", "#tasks"),
            ("17,2,4,0,-,10.0,0.01", "#jobs"),
            ("600,999,-,finish", "#events"),
        ];
        for (bad_line, after_header) in corruptions {
            let mut lines: Vec<&str> = good.lines().collect();
            let at = lines.iter().position(|l| *l == after_header).unwrap() + 1;
            lines.insert(at, bad_line);
            let text = lines.join("\n");
            let want = read_trace(&text).expect_err("corrupt line must be rejected");
            let got = TraceBatches::with_batch_records(std::io::Cursor::new(&text), 2)
                .find_map(|b| b.err())
                .expect("streaming parser must reject too");
            assert_eq!(got, want);
        }
    }

    /// After an error, iteration stops: no further batches are yielded.
    #[test]
    fn stream_ends_after_an_error() {
        let text = "#trace sys 100\n#machines\nnot-a-machine\n#jobs\n";
        let items: Vec<_> = TraceBatches::new(std::io::Cursor::new(text)).collect();
        assert_eq!(items.len(), 1);
        assert!(items[0].is_err());
    }

    /// A series split across a batch boundary keeps attaching samples to
    /// the open header instead of erroring or mis-attaching.
    #[test]
    fn open_series_survives_batch_boundaries() {
        let trace = sample_trace();
        let text = write_trace(&trace);
        let total: u64 = TraceBatches::with_batch_records(std::io::Cursor::new(&text), 1)
            .map(|b| b.expect("well-formed").samples)
            .sum();
        assert_eq!(total, 4);
    }

    /// A sealed trace streams exactly like the plain one — the trailer is
    /// verified as it is reached (counts survive every batch drain) and
    /// carries no records.
    #[test]
    fn sealed_trace_streams_and_verifies() {
        use crate::io::write_trace_sealed;
        let trace = sample_trace();
        let text = write_trace_sealed(&trace);
        for batch_records in [1, 7, 1 << 20] {
            let total: u64 =
                TraceBatches::with_batch_records(std::io::Cursor::new(&text), batch_records)
                    .map(|b| b.expect("sealed trace is well-formed").records())
                    .sum();
            let whole = read_trace(&text).unwrap();
            assert_eq!(
                total,
                (whole.machines.len()
                    + whole.jobs.len()
                    + whole.tasks.len()
                    + whole.events.len()
                    + whole
                        .host_series
                        .iter()
                        .map(|s| s.samples.len())
                        .sum::<usize>()) as u64
            );
        }
        // A flipped payload byte fails the stream at the trailer with the
        // strict reader's exact error.
        let corrupt = text.replacen("0.75", "0.85", 1);
        let want = read_trace(&corrupt).expect_err("checksum must fail");
        assert_eq!(want.kind, crate::io::ParseErrorKind::Integrity);
        let got = TraceBatches::with_batch_records(std::io::Cursor::new(&corrupt), 2)
            .find_map(|b| b.err())
            .expect("streaming parser must reject too");
        assert_eq!(got, want);
    }

    /// Empty input yields exactly one empty batch.
    #[test]
    fn empty_input_yields_one_empty_batch() {
        let items: Vec<_> = TraceBatches::new(std::io::Cursor::new("")).collect();
        assert_eq!(items.len(), 1);
        assert!(items[0].as_ref().unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_panics() {
        let _ = TraceBatches::with_batch_records(std::io::Cursor::new(""), 0);
    }
}
