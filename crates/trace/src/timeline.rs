//! Per-machine queue-state reconstruction (paper Fig. 8).
//!
//! The paper imagines each machine keeping a pending queue, a running queue
//! and a dead queue, and plots how many tasks sit in each over time. The
//! trace only records events, so [`QueueTimeline::for_machine`] rebuilds the
//! step functions by replaying the log. Pending tasks are not bound to a
//! machine until scheduled; following the paper's per-machine view, a
//! pending task's *pending spell* is attributed to the machine where that
//! attempt eventually ran. An attempt that dies while still pending
//! (kill/lost with no machine on the event) counts against no machine's
//! pending queue, but its death is charged to the `abnormal` tally of the
//! machine of the task's previous attempt; a machineless death with no
//! prior attempt belongs to no machine and is dropped from per-machine
//! views entirely.

use crate::ids::MachineId;
use crate::task::{TaskEventKind, TaskState};
use crate::time::{Duration, Timestamp};
use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// Queue occupancy at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct QueueCounts {
    /// Tasks waiting to be scheduled (attributed to their future machine).
    pub pending: u32,
    /// Tasks executing.
    pub running: u32,
    /// Cumulative normal completions.
    pub finished: u32,
    /// Cumulative abnormal completions (evict/fail/kill/lost).
    pub abnormal: u32,
}

/// Step function of queue occupancy on one machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueTimeline {
    /// The machine described.
    pub machine: MachineId,
    /// `(time, counts)` steps: counts hold from each time until the next.
    pub steps: Vec<(Timestamp, QueueCounts)>,
}

impl QueueTimeline {
    /// Rebuilds the queue timeline of `machine` from the trace event log.
    pub fn for_machine(trace: &Trace, machine: MachineId) -> QueueTimeline {
        // Pass 1: for each task, pair each Submit with the machine of the
        // following Schedule (if any), walking its events in time order.
        // Events are already time-sorted in a built trace.
        let n_tasks = trace.tasks.len();
        // For each event index, whether the Submit it represents targets
        // this machine.
        let mut submit_targets = Vec::new();
        {
            // Index of the pending Submit event per task, awaiting a
            // Schedule to learn its machine.
            let mut open_submit: Vec<Option<usize>> = vec![None; n_tasks];
            submit_targets.resize(trace.events.len(), false);
            for (i, e) in trace.events.iter().enumerate() {
                let ti = e.task.index();
                if ti >= n_tasks {
                    continue;
                }
                match e.kind {
                    TaskEventKind::Submit => open_submit[ti] = Some(i),
                    TaskEventKind::Schedule => {
                        if let Some(si) = open_submit[ti].take() {
                            if e.machine == Some(machine) {
                                submit_targets[si] = true;
                            }
                        }
                    }
                    _ => {}
                }
            }
        }

        // Pass 2: replay, applying deltas for this machine.
        let mut counts = QueueCounts::default();
        let mut steps: Vec<(Timestamp, QueueCounts)> = vec![(0, counts)];
        let mut state: Vec<TaskState> = vec![TaskState::Unsubmitted; n_tasks];
        // Whether this task's *current pending attempt* targets the machine.
        let mut pending_here: Vec<bool> = vec![false; n_tasks];
        // Machine of each task's most recent scheduled attempt, so deaths
        // while pending (which carry no machine) can be charged to it.
        let mut prev_machine: Vec<Option<MachineId>> = vec![None; n_tasks];

        for (i, e) in trace.events.iter().enumerate() {
            let ti = e.task.index();
            // Built and parsed traces contain only legal, in-range events;
            // skip anything else so hand-assembled traces cannot panic us.
            let Some(&prev) = state.get(ti) else {
                continue;
            };
            let Ok(next) = prev.apply(e.kind) else {
                continue;
            };
            state[ti] = next;
            let mut changed = false;
            match e.kind {
                TaskEventKind::Submit if submit_targets[i] => {
                    pending_here[ti] = true;
                    counts.pending += 1;
                    changed = true;
                }
                TaskEventKind::Schedule => {
                    if pending_here[ti] {
                        pending_here[ti] = false;
                        counts.pending -= 1;
                        changed = true;
                    }
                    prev_machine[ti] = e.machine;
                    if e.machine == Some(machine) {
                        counts.running += 1;
                        changed = true;
                    }
                }
                kind if kind.is_completion() => {
                    let here = e.machine == Some(machine);
                    if prev == TaskState::Running && here {
                        counts.running -= 1;
                        changed = true;
                    }
                    if prev == TaskState::Pending && pending_here[ti] {
                        pending_here[ti] = false;
                        counts.pending -= 1;
                        changed = true;
                    }
                    // A death while pending carries no machine on the
                    // event; charge it to the machine of the previous
                    // attempt (module docs). With no prior attempt it
                    // belongs to no machine and stays untallied.
                    let pending_death_here = prev == TaskState::Pending
                        && e.machine.is_none()
                        && prev_machine[ti] == Some(machine);
                    if here || pending_death_here {
                        if kind == TaskEventKind::Finish {
                            counts.finished += 1;
                        } else {
                            counts.abnormal += 1;
                        }
                        changed = true;
                    }
                }
                _ => {}
            }
            if changed {
                match steps.last_mut() {
                    Some(last) if last.0 == e.time => last.1 = counts,
                    _ => steps.push((e.time, counts)),
                }
            }
        }

        QueueTimeline { machine, steps }
    }

    /// Rebuilds the queue timelines of every machine in the trace in one
    /// sweep over the event log.
    ///
    /// Returns one timeline per entry of `trace.machines`, in that order,
    /// each identical to what [`for_machine`](Self::for_machine) builds
    /// for the same machine — but in `O(events + machines)` instead of
    /// `O(events × machines)`, which is what makes the Fig. 9 aggregation
    /// affordable at paper scale.
    pub fn for_all_machines(trace: &Trace) -> Vec<QueueTimeline> {
        let n_tasks = trace.tasks.len();
        // Slot per machine id; ids outside `trace.machines` count nowhere.
        let max_id = trace.machines.iter().map(|m| m.id.index()).max();
        let mut slot_of: Vec<Option<usize>> = vec![None; max_id.map_or(0, |m| m + 1)];
        for (slot, m) in trace.machines.iter().enumerate() {
            slot_of[m.id.index()] = Some(slot);
        }
        let slot = |machine: Option<MachineId>| -> Option<usize> {
            slot_of.get(machine?.index()).copied().flatten()
        };

        // Pass 1: machine of the Schedule that consumes each Submit event
        // (the machine its pending spell is attributed to).
        let mut submit_target: Vec<Option<MachineId>> = vec![None; trace.events.len()];
        {
            let mut open_submit: Vec<Option<usize>> = vec![None; n_tasks];
            for (i, e) in trace.events.iter().enumerate() {
                let ti = e.task.index();
                if ti >= n_tasks {
                    continue;
                }
                match e.kind {
                    TaskEventKind::Submit => open_submit[ti] = Some(i),
                    TaskEventKind::Schedule => {
                        if let Some(si) = open_submit[ti].take() {
                            submit_target[si] = e.machine;
                        }
                    }
                    _ => {}
                }
            }
        }

        // Pass 2: one replay, applying each event's deltas to the queues
        // of the machines it touches.
        let mut counts: Vec<QueueCounts> = vec![QueueCounts::default(); trace.machines.len()];
        let mut timelines: Vec<QueueTimeline> = trace
            .machines
            .iter()
            .map(|m| QueueTimeline {
                machine: m.id,
                steps: vec![(0, QueueCounts::default())],
            })
            .collect();
        let mut state: Vec<TaskState> = vec![TaskState::Unsubmitted; n_tasks];
        // Machine the task's current pending spell is attributed to.
        let mut pending_target: Vec<Option<MachineId>> = vec![None; n_tasks];
        let mut prev_machine: Vec<Option<MachineId>> = vec![None; n_tasks];

        // Mirrors the `changed` bookkeeping of `for_machine`, per slot.
        let step = |timelines: &mut Vec<QueueTimeline>, s: usize, time, c: QueueCounts| {
            let steps = &mut timelines[s].steps;
            match steps.last_mut() {
                Some(last) if last.0 == time => last.1 = c,
                _ => steps.push((time, c)),
            }
        };

        for (i, e) in trace.events.iter().enumerate() {
            let ti = e.task.index();
            let Some(&prev) = state.get(ti) else {
                continue;
            };
            let Ok(next) = prev.apply(e.kind) else {
                continue;
            };
            state[ti] = next;
            match e.kind {
                TaskEventKind::Submit => {
                    if let Some(s) = slot(submit_target[i]) {
                        pending_target[ti] = submit_target[i];
                        counts[s].pending += 1;
                        step(&mut timelines, s, e.time, counts[s]);
                    }
                }
                TaskEventKind::Schedule => {
                    if let Some(s) = slot(pending_target[ti]) {
                        pending_target[ti] = None;
                        counts[s].pending -= 1;
                        step(&mut timelines, s, e.time, counts[s]);
                    }
                    prev_machine[ti] = e.machine;
                    if let Some(s) = slot(e.machine) {
                        counts[s].running += 1;
                        step(&mut timelines, s, e.time, counts[s]);
                    }
                }
                kind if kind.is_completion() => {
                    if prev == TaskState::Running {
                        if let Some(s) = slot(e.machine) {
                            counts[s].running -= 1;
                            step(&mut timelines, s, e.time, counts[s]);
                        }
                    }
                    if prev == TaskState::Pending {
                        if let Some(s) = slot(pending_target[ti]) {
                            pending_target[ti] = None;
                            counts[s].pending -= 1;
                            step(&mut timelines, s, e.time, counts[s]);
                        }
                    }
                    // Tally machine: the event's own, or — for a
                    // machineless death while pending — the machine of
                    // the previous attempt (module docs).
                    let tally = if e.machine.is_some() {
                        e.machine
                    } else if prev == TaskState::Pending {
                        prev_machine[ti]
                    } else {
                        None
                    };
                    if let Some(s) = slot(tally) {
                        if kind == TaskEventKind::Finish {
                            counts[s].finished += 1;
                        } else {
                            counts[s].abnormal += 1;
                        }
                        step(&mut timelines, s, e.time, counts[s]);
                    }
                }
                _ => {}
            }
        }

        timelines
    }

    /// Queue counts in effect at time `t`.
    pub fn at(&self, t: Timestamp) -> QueueCounts {
        match self.steps.binary_search_by_key(&t, |s| s.0) {
            Ok(i) => self.steps[i].1,
            Err(0) => QueueCounts::default(),
            Err(i) => self.steps[i - 1].1,
        }
    }

    /// Samples the running-queue length every `period` seconds over
    /// `[0, horizon)`.
    ///
    /// Feeds the run-length / mass-count analysis of Fig. 9.
    pub fn running_series(&self, horizon: Duration, period: Duration) -> Vec<u32> {
        assert!(period > 0, "sampling period must be positive");
        let n = (horizon / period) as usize;
        let mut out = Vec::with_capacity(n);
        let mut idx = 0usize;
        let mut current = QueueCounts::default();
        for k in 0..n {
            let t = k as u64 * period;
            while idx < self.steps.len() && self.steps[idx].0 <= t {
                current = self.steps[idx].1;
                idx += 1;
            }
            out.push(current.running);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{TaskId, UserId};
    use crate::priority::Priority;
    use crate::resources::Demand;
    use crate::task::TaskEvent;
    use crate::trace::TraceBuilder;

    fn event(
        time: Timestamp,
        task: TaskId,
        machine: Option<u32>,
        kind: TaskEventKind,
    ) -> TaskEvent {
        TaskEvent {
            time,
            task,
            machine: machine.map(MachineId),
            kind,
        }
    }

    /// One machine; two tasks overlap, one fails.
    fn two_task_trace() -> Trace {
        let mut b = TraceBuilder::new("test", 1_000);
        b.add_machine(1.0, 1.0, 1.0);
        let j = b.add_job(UserId(0), Priority::from_level(2), 0);
        let t1 = b.add_task(j, Demand::new(0.1, 0.1));
        let t2 = b.add_task(j, Demand::new(0.1, 0.1));
        b.push_event(event(10, t1, None, TaskEventKind::Submit));
        b.push_event(event(20, t1, Some(0), TaskEventKind::Schedule));
        b.push_event(event(30, t2, None, TaskEventKind::Submit));
        b.push_event(event(50, t2, Some(0), TaskEventKind::Schedule));
        b.push_event(event(100, t1, Some(0), TaskEventKind::Finish));
        b.push_event(event(200, t2, Some(0), TaskEventKind::Fail));
        b.build().unwrap()
    }

    #[test]
    fn counts_follow_events() {
        let trace = two_task_trace();
        let tl = QueueTimeline::for_machine(&trace, MachineId(0));
        assert_eq!(tl.at(5), QueueCounts::default());
        assert_eq!(tl.at(10).pending, 1);
        assert_eq!(
            tl.at(20),
            QueueCounts {
                pending: 0,
                running: 1,
                finished: 0,
                abnormal: 0
            }
        );
        assert_eq!(tl.at(30).pending, 1);
        assert_eq!(
            tl.at(60),
            QueueCounts {
                pending: 0,
                running: 2,
                finished: 0,
                abnormal: 0
            }
        );
        assert_eq!(
            tl.at(150),
            QueueCounts {
                pending: 0,
                running: 1,
                finished: 1,
                abnormal: 0
            }
        );
        assert_eq!(
            tl.at(999),
            QueueCounts {
                pending: 0,
                running: 0,
                finished: 1,
                abnormal: 1
            }
        );
    }

    #[test]
    fn other_machine_sees_nothing() {
        let mut b = TraceBuilder::new("test", 1_000);
        b.add_machine(1.0, 1.0, 1.0);
        b.add_machine(1.0, 1.0, 1.0);
        let j = b.add_job(UserId(0), Priority::from_level(2), 0);
        let t = b.add_task(j, Demand::new(0.1, 0.1));
        b.push_event(event(0, t, None, TaskEventKind::Submit));
        b.push_event(event(5, t, Some(0), TaskEventKind::Schedule));
        b.push_event(event(50, t, Some(0), TaskEventKind::Finish));
        let trace = b.build().unwrap();
        let tl = QueueTimeline::for_machine(&trace, MachineId(1));
        assert_eq!(tl.at(500), QueueCounts::default());
    }

    #[test]
    fn running_series_sampling() {
        let trace = two_task_trace();
        let tl = QueueTimeline::for_machine(&trace, MachineId(0));
        let series = tl.running_series(300, 50);
        // t = 0, 50, 100, 150, 200, 250
        assert_eq!(series, vec![0, 2, 1, 1, 0, 0]);
    }

    #[test]
    fn resubmission_pending_attribution() {
        // A task evicted from machine 0 and rescheduled on machine 1: the
        // second pending spell belongs to machine 1.
        let mut b = TraceBuilder::new("test", 1_000);
        b.add_machine(1.0, 1.0, 1.0);
        b.add_machine(1.0, 1.0, 1.0);
        let j = b.add_job(UserId(0), Priority::from_level(2), 0);
        let t = b.add_task(j, Demand::new(0.1, 0.1));
        b.push_event(event(0, t, None, TaskEventKind::Submit));
        b.push_event(event(10, t, Some(0), TaskEventKind::Schedule));
        b.push_event(event(50, t, Some(0), TaskEventKind::Evict));
        b.push_event(event(50, t, None, TaskEventKind::Submit));
        b.push_event(event(90, t, Some(1), TaskEventKind::Schedule));
        b.push_event(event(150, t, Some(1), TaskEventKind::Finish));
        let trace = b.build().unwrap();

        let m0 = QueueTimeline::for_machine(&trace, MachineId(0));
        assert_eq!(
            m0.at(70).pending,
            0,
            "second spell must not count on machine 0"
        );
        assert_eq!(m0.at(70).abnormal, 1);
        let m1 = QueueTimeline::for_machine(&trace, MachineId(1));
        assert_eq!(m1.at(70).pending, 1);
        assert_eq!(m1.at(100).running, 1);
        assert_eq!(m1.at(200).finished, 1);
    }

    #[test]
    fn pending_death_charged_to_previous_attempt() {
        // A task evicted from machine 0, resubmitted, then killed while
        // still pending: the kill event carries no machine, but the death
        // belongs to machine 0's abnormal tally (its previous attempt ran
        // there). A task killed while pending with no prior attempt
        // belongs to no machine at all.
        let mut b = TraceBuilder::new("test", 1_000);
        b.add_machine(1.0, 1.0, 1.0);
        b.add_machine(1.0, 1.0, 1.0);
        let j = b.add_job(UserId(0), Priority::from_level(2), 0);
        let t = b.add_task(j, Demand::new(0.1, 0.1));
        let u = b.add_task(j, Demand::new(0.1, 0.1));
        b.push_event(event(0, t, None, TaskEventKind::Submit));
        b.push_event(event(5, u, None, TaskEventKind::Submit));
        b.push_event(event(10, t, Some(0), TaskEventKind::Schedule));
        b.push_event(event(50, t, Some(0), TaskEventKind::Evict));
        b.push_event(event(50, t, None, TaskEventKind::Submit));
        b.push_event(event(80, u, None, TaskEventKind::Kill));
        b.push_event(event(90, t, None, TaskEventKind::Kill));
        let trace = b.build().unwrap();

        let m0 = QueueTimeline::for_machine(&trace, MachineId(0));
        // Evict at 50 plus the pending death at 90.
        assert_eq!(m0.at(70).abnormal, 1);
        assert_eq!(m0.at(999).abnormal, 2, "pending death missed");
        assert_eq!(m0.at(999).pending, 0);
        assert_eq!(m0.at(999).running, 0);
        // Task `u` never ran anywhere: its death counts on no machine.
        let m1 = QueueTimeline::for_machine(&trace, MachineId(1));
        assert_eq!(m1.at(999), QueueCounts::default());
    }

    #[test]
    fn at_handles_exact_step_times() {
        let trace = two_task_trace();
        let tl = QueueTimeline::for_machine(&trace, MachineId(0));
        // Exactly at an event timestamp the new counts are in effect.
        assert_eq!(tl.at(100).finished, 1);
    }

    #[test]
    fn for_all_machines_matches_per_machine_replay() {
        // Covers overlap + failure, cross-machine resubmission, and the
        // machineless pending-death attribution, on every machine.
        let mut traces = vec![two_task_trace()];
        {
            let mut b = TraceBuilder::new("test", 1_000);
            b.add_machine(1.0, 1.0, 1.0);
            b.add_machine(1.0, 1.0, 1.0);
            let j = b.add_job(UserId(0), Priority::from_level(2), 0);
            let t = b.add_task(j, Demand::new(0.1, 0.1));
            let u = b.add_task(j, Demand::new(0.1, 0.1));
            b.push_event(event(0, t, None, TaskEventKind::Submit));
            b.push_event(event(5, u, None, TaskEventKind::Submit));
            b.push_event(event(10, t, Some(0), TaskEventKind::Schedule));
            b.push_event(event(50, t, Some(0), TaskEventKind::Evict));
            b.push_event(event(50, t, None, TaskEventKind::Submit));
            b.push_event(event(80, u, None, TaskEventKind::Kill));
            b.push_event(event(90, t, Some(1), TaskEventKind::Schedule));
            b.push_event(event(90, t, Some(1), TaskEventKind::Evict));
            b.push_event(event(90, t, None, TaskEventKind::Submit));
            b.push_event(event(95, t, None, TaskEventKind::Kill));
            traces.push(b.build().unwrap());
        }
        for trace in &traces {
            let all = QueueTimeline::for_all_machines(trace);
            assert_eq!(all.len(), trace.machines.len());
            for (got, m) in all.iter().zip(&trace.machines) {
                let want = QueueTimeline::for_machine(trace, m.id);
                assert_eq!(got, &want, "timeline diverged on {:?}", m.id);
            }
        }
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn running_series_zero_period_panics() {
        let trace = two_task_trace();
        let tl = QueueTimeline::for_machine(&trace, MachineId(0));
        let _ = tl.running_series(100, 0);
    }
}
