//! Machines: heterogeneous capacities in normalized units.
//!
//! The Google fleet is heterogeneous: the released trace normalizes every
//! capacity by the largest machine's, and the paper observes the resulting
//! discrete capacity classes (Fig. 7's dotted lines): CPU capacities
//! {0.25, 0.5, 1} and memory capacities {0.25, 0.5, 0.75, 1}. Page-cache
//! capacity is uniform across machines.

use crate::ids::MachineId;
use crate::resources::Demand;
use serde::{Deserialize, Serialize};

/// The discrete normalized CPU capacity classes observed in the trace.
pub const CPU_CAPACITY_CLASSES: [f64; 3] = [0.25, 0.5, 1.0];

/// The discrete normalized memory capacity classes observed in the trace.
pub const MEMORY_CAPACITY_CLASSES: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

/// A machine in the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineRecord {
    /// Machine identifier.
    pub id: MachineId,
    /// Normalized CPU capacity (one of [`CPU_CAPACITY_CLASSES`] for
    /// Google-like fleets; grid fleets may use other values).
    pub cpu_capacity: f64,
    /// Normalized memory capacity.
    pub memory_capacity: f64,
    /// Normalized page-cache capacity (uniformly 1.0 in the Google trace).
    pub page_cache_capacity: f64,
}

impl MachineRecord {
    /// Creates a machine record, validating capacities are in `(0, 1]`.
    pub fn new(id: MachineId, cpu: f64, memory: f64, page_cache: f64) -> Self {
        for (name, v) in [("cpu", cpu), ("memory", memory), ("page_cache", page_cache)] {
            assert!(
                v > 0.0 && v <= 1.0,
                "{name} capacity must be in (0, 1], got {v}"
            );
        }
        MachineRecord {
            id,
            cpu_capacity: cpu,
            memory_capacity: memory,
            page_cache_capacity: page_cache,
        }
    }

    /// The machine's capacity as a demand vector (CPU, memory).
    #[inline]
    pub fn capacity(&self) -> Demand {
        Demand {
            cpu: self.cpu_capacity,
            memory: self.memory_capacity,
        }
    }

    /// Index of this machine's CPU class within `classes`, by nearest value.
    ///
    /// Used to group machines per capacity class when reproducing Fig. 7.
    pub fn capacity_class(value: f64, classes: &[f64]) -> usize {
        classes
            .iter()
            .enumerate()
            .min_by(|a, b| {
                (a.1 - value)
                    .abs()
                    .partial_cmp(&(b.1 - value).abs())
                    .expect("capacity classes must not contain NaN")
            })
            .map(|(i, _)| i)
            .expect("capacity class list must be non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_vector() {
        let m = MachineRecord::new(MachineId(0), 0.5, 0.75, 1.0);
        let c = m.capacity();
        assert_eq!(c.cpu, 0.5);
        assert_eq!(c.memory, 0.75);
    }

    #[test]
    #[should_panic(expected = "capacity must be in (0, 1]")]
    fn zero_capacity_rejected() {
        let _ = MachineRecord::new(MachineId(0), 0.0, 0.5, 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be in (0, 1]")]
    fn oversized_capacity_rejected() {
        let _ = MachineRecord::new(MachineId(0), 0.5, 1.5, 1.0);
    }

    #[test]
    fn class_assignment_is_nearest() {
        assert_eq!(
            MachineRecord::capacity_class(0.25, &CPU_CAPACITY_CLASSES),
            0
        );
        assert_eq!(MachineRecord::capacity_class(0.5, &CPU_CAPACITY_CLASSES), 1);
        assert_eq!(MachineRecord::capacity_class(1.0, &CPU_CAPACITY_CLASSES), 2);
        // Values off the grid snap to the nearest class.
        assert_eq!(MachineRecord::capacity_class(0.3, &CPU_CAPACITY_CLASSES), 0);
        assert_eq!(
            MachineRecord::capacity_class(0.8, &MEMORY_CAPACITY_CLASSES),
            2
        );
    }

    #[test]
    fn class_constants_match_paper() {
        assert_eq!(CPU_CAPACITY_CLASSES.len(), 3);
        assert_eq!(MEMORY_CAPACITY_CLASSES.len(), 4);
    }
}
