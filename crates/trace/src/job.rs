//! Jobs: a user request consisting of one or more tasks.
//!
//! The paper's work-load analyses (Section III) operate at job granularity:
//! job length (submission to completion), submission intervals, per-job CPU
//! and memory utilization. The builder fills the summary fields from the
//! event log so analyses never have to re-derive them.

use crate::ids::{JobId, TaskId, UserId};
use crate::priority::Priority;
use crate::time::Timestamp;
use serde::{Deserialize, Serialize};

/// Per-job record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job identifier.
    pub id: JobId,
    /// Submitting user.
    pub user: UserId,
    /// Priority shared by all of the job's tasks.
    pub priority: Priority,
    /// Submission time of the job (first task submission).
    pub submit_time: Timestamp,
    /// Tasks belonging to this job.
    pub tasks: Vec<TaskId>,
    /// Time the last task completed, if the job finished within the trace.
    pub completion_time: Option<Timestamp>,
    /// Cumulative CPU time over all processors and tasks, in
    /// core-seconds. For a sequential job this is at most the wall-clock
    /// time; parallel grid jobs accumulate `width ×` wall-clock.
    pub cpu_seconds: f64,
    /// Mean memory held by the job while active, normalized to the largest
    /// machine's capacity (the Google trace's normalization).
    pub mean_memory: f64,
}

impl JobRecord {
    /// The paper's *job length*: duration between submission and completion.
    ///
    /// `None` if the job was still active when the trace ended; such jobs
    /// are excluded from length CDFs, exactly as unfinished jobs are
    /// excluded in trace studies.
    #[inline]
    pub fn length(&self) -> Option<u64> {
        self.completion_time
            .map(|c| c.saturating_sub(self.submit_time))
    }

    /// Number of tasks in the job.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// The paper's per-job CPU usage metric (Formula 4):
    /// cumulative CPU time over all processors divided by wall-clock time.
    ///
    /// `None` for unfinished or zero-length jobs.
    pub fn cpu_usage(&self) -> Option<f64> {
        let len = self.length()?;
        if len == 0 {
            return None;
        }
        Some(self.cpu_seconds / len as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(submit: Timestamp, complete: Option<Timestamp>, cpu_seconds: f64) -> JobRecord {
        JobRecord {
            id: JobId(0),
            user: UserId(0),
            priority: Priority::from_level(3),
            submit_time: submit,
            tasks: vec![TaskId(0)],
            completion_time: complete,
            cpu_seconds,
            mean_memory: 0.01,
        }
    }

    #[test]
    fn length_is_completion_minus_submission() {
        assert_eq!(job(100, Some(400), 0.0).length(), Some(300));
        assert_eq!(job(100, None, 0.0).length(), None);
    }

    #[test]
    fn length_saturates_on_inverted_times() {
        // Defensive: a malformed record must not underflow.
        assert_eq!(job(500, Some(400), 0.0).length(), Some(0));
    }

    #[test]
    fn cpu_usage_is_cpu_seconds_over_wallclock() {
        // A job that ran 300 s of wall-clock and consumed 600 core-seconds
        // used 2 processors on average (a parallel grid job).
        let j = job(0, Some(300), 600.0);
        assert!((j.cpu_usage().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cpu_usage_none_for_unfinished_or_instant() {
        assert_eq!(job(0, None, 10.0).cpu_usage(), None);
        assert_eq!(job(5, Some(5), 10.0).cpu_usage(), None);
    }
}
