//! Task priorities.
//!
//! The Google trace defines 12 scheduling priorities. The paper observes
//! (Fig. 2) that they cluster into three groups — low (1–4), middle (5–8)
//! and high (9–12) — and analyzes host load separately per group, because a
//! machine saturated by low-priority work is still "idle" from the point of
//! view of a high-priority task that could preempt it.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of distinct priorities in the Google trace.
pub const NUM_PRIORITIES: usize = 12;

/// A task/job priority in `1..=12`. Higher values preempt lower ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Priority(u8);

impl Priority {
    /// The lowest priority, `1`.
    pub const MIN: Priority = Priority(1);
    /// The highest priority, `12`.
    pub const MAX: Priority = Priority(12);

    /// Creates a priority, returning `None` unless `level` is in `1..=12`.
    pub fn new(level: u8) -> Option<Self> {
        (1..=NUM_PRIORITIES as u8)
            .contains(&level)
            .then_some(Self(level))
    }

    /// Creates a priority, panicking if `level` is out of range.
    ///
    /// Convenient in tests and generator presets where the level is a
    /// literal.
    pub fn from_level(level: u8) -> Self {
        Self::new(level)
            .unwrap_or_else(|| panic!("priority level {level} out of range 1..={NUM_PRIORITIES}"))
    }

    /// The numeric level in `1..=12`.
    #[inline]
    pub fn level(self) -> u8 {
        self.0
    }

    /// Zero-based index in `0..12`, for histogram arrays.
    #[inline]
    pub fn index(self) -> usize {
        (self.0 - 1) as usize
    }

    /// The cluster this priority belongs to per the paper's grouping.
    #[inline]
    pub fn class(self) -> PriorityClass {
        match self.0 {
            1..=4 => PriorityClass::Low,
            5..=8 => PriorityClass::Middle,
            _ => PriorityClass::High,
        }
    }

    /// Whether a task at this priority may preempt one at `other`.
    #[inline]
    pub fn preempts(self, other: Priority) -> bool {
        self.0 > other.0
    }

    /// Iterates over all 12 priorities in ascending order.
    pub fn all() -> impl Iterator<Item = Priority> {
        (1..=NUM_PRIORITIES as u8).map(Priority)
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The paper's three-way clustering of the 12 priorities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PriorityClass {
    /// Priorities 1–4: gratis / batch work, the bulk of the load.
    Low,
    /// Priorities 5–8: normal production tasks.
    Middle,
    /// Priorities 9–12: latency-sensitive / monitoring tasks.
    High,
}

impl PriorityClass {
    /// All three classes, ascending.
    pub const ALL: [PriorityClass; 3] = [
        PriorityClass::Low,
        PriorityClass::Middle,
        PriorityClass::High,
    ];

    /// Zero-based index (Low = 0, Middle = 1, High = 2).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            PriorityClass::Low => 0,
            PriorityClass::Middle => 1,
            PriorityClass::High => 2,
        }
    }

    /// The inclusive range of priority levels in this class.
    pub fn levels(self) -> std::ops::RangeInclusive<u8> {
        match self {
            PriorityClass::Low => 1..=4,
            PriorityClass::Middle => 5..=8,
            PriorityClass::High => 9..=12,
        }
    }
}

impl fmt::Display for PriorityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PriorityClass::Low => "low",
            PriorityClass::Middle => "middle",
            PriorityClass::High => "high",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_bounds() {
        assert!(Priority::new(0).is_none());
        assert!(Priority::new(13).is_none());
        assert_eq!(Priority::new(1), Some(Priority::MIN));
        assert_eq!(Priority::new(12), Some(Priority::MAX));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_level_panics_out_of_range() {
        let _ = Priority::from_level(0);
    }

    #[test]
    fn class_boundaries_match_paper() {
        assert_eq!(Priority::from_level(1).class(), PriorityClass::Low);
        assert_eq!(Priority::from_level(4).class(), PriorityClass::Low);
        assert_eq!(Priority::from_level(5).class(), PriorityClass::Middle);
        assert_eq!(Priority::from_level(8).class(), PriorityClass::Middle);
        assert_eq!(Priority::from_level(9).class(), PriorityClass::High);
        assert_eq!(Priority::from_level(12).class(), PriorityClass::High);
    }

    #[test]
    fn preemption_is_strict() {
        let lo = Priority::from_level(2);
        let hi = Priority::from_level(9);
        assert!(hi.preempts(lo));
        assert!(!lo.preempts(hi));
        assert!(!hi.preempts(hi));
    }

    #[test]
    fn all_covers_every_level_once() {
        let levels: Vec<u8> = Priority::all().map(Priority::level).collect();
        assert_eq!(levels, (1..=12).collect::<Vec<_>>());
    }

    #[test]
    fn class_levels_partition_priorities() {
        let mut seen = [false; NUM_PRIORITIES];
        for class in PriorityClass::ALL {
            for level in class.levels() {
                let idx = (level - 1) as usize;
                assert!(!seen[idx], "level {level} covered twice");
                seen[idx] = true;
                assert_eq!(Priority::from_level(level).class(), class);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn index_is_zero_based() {
        assert_eq!(Priority::MIN.index(), 0);
        assert_eq!(Priority::MAX.index(), 11);
        assert_eq!(PriorityClass::Low.index(), 0);
        assert_eq!(PriorityClass::High.index(), 2);
    }
}
