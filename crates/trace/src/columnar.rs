//! Binary columnar trace container: compact, CRC-guarded, mmap-friendly.
//!
//! The sectioned-CSV text format ([`crate::io`]) burns nearly half of the
//! pipeline's end-to-end wall-clock formatting and re-parsing decimal
//! strings. This module is the storage format for scale: the same trace
//! laid out **column per block** in little-endian binary, so the write
//! side is a sequence of `memcpy`-shaped column sweeps and the read side
//! decodes fixed-width lanes straight out of a memory-mapped file —
//! no intermediate strings, no per-record allocation.
//!
//! ```text
//! write:  Trace ──write_columnar_to──▶ [header][MACH][JOBS][TASK][EVNT][SERI]
//! read:   map_trace ──▶ &[u8] ──read_trace_columnar{,_parallel}──▶ Trace
//! stream: &[u8] ──ColumnarBatches──▶ batch ▶ batch ▶ … ──▶ passes
//! ```
//!
//! Text stays the import/export path; this container is the machine-to-
//! machine representation. Round-trip equivalence (text → binary → text
//! is byte-identical, reports byte-identical across formats) is pinned by
//! tests here and in `tests/format_equivalence.rs`.
//!
//! # On-disk layout (version 1, all integers little-endian)
//!
//! ```text
//! header   magic "CGCB" (4) · version u16 · reserved u16 (0)
//!          horizon u64 · system_len u32 · system UTF-8 bytes
//!          zero padding to the next 8-byte boundary
//!          crc32 u32 (over all header bytes above) · zero padding u32
//! section  tag (4) · reserved u32 (0) · payload_len u64
//!          payload (payload_len bytes, always a multiple of 8)
//!          crc32 u32 (over the payload bytes) · zero padding u32
//! ```
//!
//! Exactly five sections follow the header, in fixed order: `MACH`,
//! `JOBS`, `TASK`, `EVNT`, `SERI`. Every payload starts with a `u64`
//! record count and then one contiguous block per column (fixed column
//! order, see the `write_*` functions); sub-8-byte lanes (`u32`/`u8`)
//! are zero-padded to the next 8-byte boundary so every block starts
//! 8-aligned. Ids are implicit — records are stored dense and in order,
//! exactly as the text format requires them — and `Option` fields use
//! sentinels: `u64::MAX` for a missing job completion time, `u32::MAX`
//! for an event without a machine. A container is *always* sealed: the
//! header and each section carry a CRC-32 (the slicing-by-8 engine from
//! [`crate::integrity`]), verified before any decoding — every content
//! byte of the container is checksummed; only the CRC words themselves
//! and dead padding are not.
//!
//! Versioning: readers reject any `version` they do not know (there is
//! only version 1); `reserved` fields must be written as zero and are
//! ignored on read, leaving room for compatible flag bits later.
//!
//! # Errors
//!
//! All failures are typed [`ParseError`]s — never panics — with the same
//! kinds the text readers use: [`ParseErrorKind::Integrity`] for magic/
//! version/CRC/truncation damage, [`ParseErrorKind::Syntax`] for
//! well-framed sections whose decoded records violate the structural
//! invariants (dense ids, cross-references, the task life-cycle state
//! machine — checked exactly as strictly as [`crate::read_trace`]).
//! For binary containers the error's `line` field carries a **byte
//! offset** into the container instead of a line number.
//!
//! # Zero-copy and alignment
//!
//! Column accessors ([`ColU64`] and friends) wrap raw byte slices of the
//! mapped file and decode each lane with `from_le_bytes` on the fly — an
//! unaligned load, a single instruction on every supported target — so
//! the container needs no alignment guarantees from the allocator or the
//! page cache and the accessors are safe on any `&[u8]`.

use crate::integrity::Crc32;
use crate::io::{IngestTally, ParseError};
use crate::job::JobRecord;
use crate::machine::MachineRecord;
use crate::priority::Priority;
use crate::resources::Demand;
use crate::stream::{BatchSource, TraceBatch};
use crate::task::{TaskEvent, TaskEventKind, TaskOutcome, TaskRecord, TaskState};
use crate::trace::Trace;
use crate::usage::{ClassSplit, HostSeries, UsageSample};
use crate::{JobId, MachineId, TaskId, UserId};
use std::io::{self, Write};
use std::path::Path;

/// The container's magic bytes — first four bytes of every binary trace.
pub const MAGIC: [u8; 4] = *b"CGCB";

/// The one and only format version this build reads and writes.
pub const FORMAT_VERSION: u16 = 1;

/// Section tags, in the fixed on-disk order.
const SECTION_TAGS: [[u8; 4]; 5] = [*b"MACH", *b"JOBS", *b"TASK", *b"EVNT", *b"SERI"];

/// Bytes of one section header (tag + reserved + payload length).
const SECTION_HEADER: usize = 16;

/// Bytes of one section trailer (CRC-32 + zero padding).
const SECTION_TRAILER: usize = 8;

/// True if `bytes` begin with the binary-container magic — the format
/// sniff used by tools that accept both text and binary traces.
#[inline]
pub fn is_columnar(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

/// Rounds `n` up to the next multiple of 8 (column blocks are 8-aligned).
#[inline]
fn padded(n: u64) -> u64 {
    (n + 7) & !7
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Buffers column bytes, tracks the running CRC, and flushes to the
/// underlying writer in large chunks, so per-element `put_*` calls never
/// hit the `Write` object (or the CRC engine) one lane at a time.
struct SectionSink<'w> {
    w: &'w mut dyn Write,
    buf: Vec<u8>,
    crc: Crc32,
    written: u64,
}

impl<'w> SectionSink<'w> {
    const FLUSH_AT: usize = 64 * 1024;

    fn new(w: &'w mut dyn Write) -> Self {
        SectionSink {
            w,
            buf: Vec::with_capacity(Self::FLUSH_AT + 16),
            crc: Crc32::new(),
            written: 0,
        }
    }

    fn flush_buf(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.crc.update(&self.buf);
            self.written += self.buf.len() as u64;
            self.w.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    #[inline]
    fn put(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.buf.extend_from_slice(bytes);
        if self.buf.len() >= Self::FLUSH_AT {
            self.flush_buf()?;
        }
        Ok(())
    }

    #[inline]
    fn put_u64(&mut self, v: u64) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }

    #[inline]
    fn put_u32(&mut self, v: u32) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }

    #[inline]
    fn put_f64(&mut self, v: f64) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }

    /// Zero padding that closes a `u32`/`u8` column block at an 8-byte
    /// boundary.
    fn pad_block(&mut self, block_bytes: u64) -> io::Result<()> {
        let pad = (padded(block_bytes) - block_bytes) as usize;
        self.put(&[0u8; 8][..pad])
    }

    /// Flushes the tail and returns `(crc, payload bytes written)`.
    fn finish(mut self) -> io::Result<(u32, u64)> {
        self.flush_buf()?;
        Ok((self.crc.finalize(), self.written))
    }
}

/// Writes one section: header with the pre-computed payload length, the
/// payload via `fill`, then the CRC trailer. The pre-computed length is
/// cross-checked against what `fill` actually produced.
fn write_section(
    w: &mut dyn Write,
    tag: [u8; 4],
    payload_len: u64,
    fill: impl FnOnce(&mut SectionSink<'_>) -> io::Result<()>,
) -> io::Result<()> {
    w.write_all(&tag)?;
    w.write_all(&0u32.to_le_bytes())?;
    w.write_all(&payload_len.to_le_bytes())?;
    let mut sink = SectionSink::new(w);
    fill(&mut sink)?;
    let (crc, written) = sink.finish()?;
    debug_assert_eq!(written, payload_len, "section {tag:?} length accounting");
    if written != payload_len {
        return Err(io::Error::other(format!(
            "columnar writer bug: section {} payload {written} bytes != declared {payload_len}",
            String::from_utf8_lossy(&tag)
        )));
    }
    w.write_all(&crc.to_le_bytes())?;
    w.write_all(&0u32.to_le_bytes())?;
    Ok(())
}

fn event_kind_code(kind: TaskEventKind) -> u8 {
    match kind {
        TaskEventKind::Submit => 0,
        TaskEventKind::Schedule => 1,
        TaskEventKind::Evict => 2,
        TaskEventKind::Fail => 3,
        TaskEventKind::Finish => 4,
        TaskEventKind::Kill => 5,
        TaskEventKind::Lost => 6,
        TaskEventKind::UpdatePending => 7,
        TaskEventKind::UpdateRunning => 8,
    }
}

fn event_kind_from_code(code: u8) -> Option<TaskEventKind> {
    Some(match code {
        0 => TaskEventKind::Submit,
        1 => TaskEventKind::Schedule,
        2 => TaskEventKind::Evict,
        3 => TaskEventKind::Fail,
        4 => TaskEventKind::Finish,
        5 => TaskEventKind::Kill,
        6 => TaskEventKind::Lost,
        7 => TaskEventKind::UpdatePending,
        8 => TaskEventKind::UpdateRunning,
        _ => return None,
    })
}

fn outcome_code(o: TaskOutcome) -> u8 {
    match o {
        TaskOutcome::Finished => 0,
        TaskOutcome::Evicted => 1,
        TaskOutcome::Failed => 2,
        TaskOutcome::Killed => 3,
        TaskOutcome::Lost => 4,
        TaskOutcome::Unfinished => 5,
    }
}

fn outcome_from_code(code: u8) -> Option<TaskOutcome> {
    Some(match code {
        0 => TaskOutcome::Finished,
        1 => TaskOutcome::Evicted,
        2 => TaskOutcome::Failed,
        3 => TaskOutcome::Killed,
        4 => TaskOutcome::Lost,
        5 => TaskOutcome::Unfinished,
        _ => return None,
    })
}

/// Sentinel for [`JobRecord::completion_time`]` == None`.
const NO_COMPLETION: u64 = u64::MAX;

/// Sentinel for [`TaskEvent::machine`]` == None`.
const NO_MACHINE: u32 = u32::MAX;

/// Serializes `trace` as a binary columnar container into `w`.
///
/// Streams column by column through an internal chunk buffer — memory
/// stays O(chunk), not O(trace) — so wrap `w` in a
/// [`BufWriter`](std::io::BufWriter) only if it is an unbuffered file
/// (the sink already batches its own writes).
///
/// For durability pair it with
/// [`write_atomic_with`](crate::write_atomic_with):
///
/// ```no_run
/// # let trace = cgc_trace::trace::TraceBuilder::new("t", 0).build().unwrap();
/// cgc_trace::write_atomic_with("trace.cgcb", |w| {
///     cgc_trace::columnar::write_columnar_to(&trace, w)
/// }).unwrap();
/// ```
pub fn write_columnar_to(trace: &Trace, w: &mut dyn Write) -> io::Result<()> {
    let _span = cgc_obs::span(cgc_obs::stages::WRITE);

    // Header, sealed by its own CRC word.
    let system = trace.system.as_bytes();
    let system_len = u32::try_from(system.len())
        .map_err(|_| io::Error::other("system name exceeds u32::MAX bytes"))?;
    let mut header = Vec::with_capacity(24 + system.len());
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    header.extend_from_slice(&0u16.to_le_bytes());
    header.extend_from_slice(&trace.horizon.to_le_bytes());
    header.extend_from_slice(&system_len.to_le_bytes());
    header.extend_from_slice(system);
    header.resize(padded(header.len() as u64) as usize, 0);
    w.write_all(&header)?;
    w.write_all(&crate::integrity::crc32(&header).to_le_bytes())?;
    w.write_all(&0u32.to_le_bytes())?;

    // MACH: cpu f64 · memory f64 · page_cache f64.
    let n = trace.machines.len() as u64;
    write_section(w, SECTION_TAGS[0], 8 + 3 * 8 * n, |s| {
        s.put_u64(n)?;
        for m in &trace.machines {
            s.put_f64(m.cpu_capacity)?;
        }
        for m in &trace.machines {
            s.put_f64(m.memory_capacity)?;
        }
        for m in &trace.machines {
            s.put_f64(m.page_cache_capacity)?;
        }
        Ok(())
    })?;

    // JOBS: user u32 · priority u8 · submit u64 · completion u64
    //       · cpu_seconds f64 · mean_memory f64.
    let n = trace.jobs.len() as u64;
    write_section(
        w,
        SECTION_TAGS[1],
        8 + padded(4 * n) + padded(n) + 3 * 8 * n + 8 * n,
        |s| {
            s.put_u64(n)?;
            for j in &trace.jobs {
                s.put_u32(j.user.0)?;
            }
            s.pad_block(4 * n)?;
            for j in &trace.jobs {
                s.put(&[j.priority.level()])?;
            }
            s.pad_block(n)?;
            for j in &trace.jobs {
                s.put_u64(j.submit_time)?;
            }
            for j in &trace.jobs {
                s.put_u64(j.completion_time.unwrap_or(NO_COMPLETION))?;
            }
            for j in &trace.jobs {
                s.put_f64(j.cpu_seconds)?;
            }
            for j in &trace.jobs {
                s.put_f64(j.mean_memory)?;
            }
            Ok(())
        },
    )?;

    // TASK: job u32 · priority u8 · submit u64 · cpu f64 · mem f64
    //       · execution u64 · attempts u32 · resubmit_wait u64 · outcome u8.
    let n = trace.tasks.len() as u64;
    write_section(
        w,
        SECTION_TAGS[2],
        8 + 2 * padded(4 * n) + 2 * padded(n) + 5 * 8 * n,
        |s| {
            s.put_u64(n)?;
            for t in &trace.tasks {
                s.put_u32(t.job.0)?;
            }
            s.pad_block(4 * n)?;
            for t in &trace.tasks {
                s.put(&[t.priority.level()])?;
            }
            s.pad_block(n)?;
            for t in &trace.tasks {
                s.put_u64(t.submit_time)?;
            }
            for t in &trace.tasks {
                s.put_f64(t.demand.cpu)?;
            }
            for t in &trace.tasks {
                s.put_f64(t.demand.memory)?;
            }
            for t in &trace.tasks {
                s.put_u64(t.execution_time)?;
            }
            for t in &trace.tasks {
                s.put_u32(t.attempts)?;
            }
            s.pad_block(4 * n)?;
            for t in &trace.tasks {
                s.put_u64(t.resubmit_wait)?;
            }
            for t in &trace.tasks {
                s.put(&[outcome_code(t.outcome)])?;
            }
            s.pad_block(n)?;
            Ok(())
        },
    )?;

    // EVNT: time u64 · task u32 · machine u32 · kind u8.
    let n = trace.events.len() as u64;
    write_section(
        w,
        SECTION_TAGS[3],
        8 + 8 * n + 2 * padded(4 * n) + padded(n),
        |s| {
            s.put_u64(n)?;
            for e in &trace.events {
                s.put_u64(e.time)?;
            }
            for e in &trace.events {
                s.put_u32(e.task.0)?;
            }
            s.pad_block(4 * n)?;
            for e in &trace.events {
                s.put_u32(e.machine.map_or(NO_MACHINE, |m| m.0))?;
            }
            s.pad_block(4 * n)?;
            for e in &trace.events {
                s.put(&[event_kind_code(e.kind)])?;
            }
            s.pad_block(n)?;
            Ok(())
        },
    )?;

    // SERI: series headers (machine u32 · start u64 · period u64 ·
    // count u64), then per series ten f64 sample columns in
    // [`UsageSample`] field order.
    let s_count = trace.host_series.len() as u64;
    let sample_total: u64 = trace
        .host_series
        .iter()
        .map(|s| s.samples.len() as u64)
        .sum();
    write_section(
        w,
        SECTION_TAGS[4],
        8 + padded(4 * s_count) + 3 * 8 * s_count + 10 * 8 * sample_total,
        |s| {
            s.put_u64(s_count)?;
            for hs in &trace.host_series {
                s.put_u32(hs.machine.0)?;
            }
            s.pad_block(4 * s_count)?;
            for hs in &trace.host_series {
                s.put_u64(hs.start)?;
            }
            for hs in &trace.host_series {
                s.put_u64(hs.period)?;
            }
            for hs in &trace.host_series {
                s.put_u64(hs.samples.len() as u64)?;
            }
            for hs in &trace.host_series {
                for f in SAMPLE_FIELDS {
                    for sample in &hs.samples {
                        s.put_f64(f(sample))?;
                    }
                }
            }
            Ok(())
        },
    )?;
    Ok(())
}

/// The ten [`UsageSample`] lanes, in on-disk column order.
type SampleField = fn(&UsageSample) -> f64;
const SAMPLE_FIELDS: [SampleField; 10] = [
    |s| s.cpu.low,
    |s| s.cpu.middle,
    |s| s.cpu.high,
    |s| s.memory_used.low,
    |s| s.memory_used.middle,
    |s| s.memory_used.high,
    |s| s.memory_assigned.low,
    |s| s.memory_assigned.middle,
    |s| s.memory_assigned.high,
    |s| s.page_cache,
];

/// [`write_columnar_to`] into a fresh `Vec<u8>` — the binary counterpart
/// of [`write_trace`](crate::write_trace).
pub fn write_trace_columnar(trace: &Trace) -> Vec<u8> {
    let mut out = Vec::new();
    write_columnar_to(trace, &mut out).expect("writing to a Vec cannot fail");
    out
}

// ---------------------------------------------------------------------------
// Column accessors
// ---------------------------------------------------------------------------

macro_rules! lane_col {
    ($(#[$doc:meta])* $name:ident, $ty:ty, $width:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy)]
        pub struct $name<'a> {
            bytes: &'a [u8],
        }

        impl<'a> $name<'a> {
            #[inline]
            fn new(bytes: &'a [u8]) -> Self {
                debug_assert_eq!(bytes.len() % $width, 0);
                Self { bytes }
            }

            /// Number of lanes in the column.
            #[inline]
            pub fn len(&self) -> usize {
                self.bytes.len() / $width
            }

            /// True if the column holds no lanes.
            #[inline]
            pub fn is_empty(&self) -> bool {
                self.bytes.is_empty()
            }

            /// Decodes lane `i`. Panics if out of range, like slice
            /// indexing — container parsing has already bounds-checked
            /// every column against its section's record count.
            #[inline]
            pub fn get(&self, i: usize) -> $ty {
                let at = i * $width;
                <$ty>::from_le_bytes(self.bytes[at..at + $width].try_into().unwrap())
            }

            /// Iterates all lanes in order.
            #[inline]
            pub fn iter(&self) -> impl Iterator<Item = $ty> + 'a {
                self.bytes
                    .chunks_exact($width)
                    .map(|c| <$ty>::from_le_bytes(c.try_into().unwrap()))
            }
        }
    };
}

lane_col!(
    /// A zero-copy `u64` column over container bytes.
    ColU64,
    u64,
    8
);
lane_col!(
    /// A zero-copy `f64` column over container bytes.
    ColF64,
    f64,
    8
);
lane_col!(
    /// A zero-copy `u32` column over container bytes.
    ColU32,
    u32,
    4
);

// ---------------------------------------------------------------------------
// Parsing: container framing
// ---------------------------------------------------------------------------

fn eint(offset: usize, message: impl Into<String>) -> ParseError {
    crate::io::integrity_failed();
    ParseError::integrity(offset, message)
}

fn esyn(offset: usize, message: impl Into<String>) -> ParseError {
    ParseError::syntax(offset, message)
}

/// A cursor over one section's payload, slicing off 8-aligned column
/// blocks with bounds checks. `base` is the payload's byte offset in the
/// container, so errors can point at the failing column.
struct Payload<'a> {
    bytes: &'a [u8],
    pos: usize,
    base: usize,
    section: &'static str,
}

impl<'a> Payload<'a> {
    fn offset(&self) -> usize {
        self.base + self.pos
    }

    fn take(&mut self, len: u64, what: &str) -> Result<&'a [u8], ParseError> {
        let len = usize::try_from(len).map_err(|_| {
            eint(
                self.offset(),
                format!("{} section: {what} column does not fit in memory", self.section),
            )
        })?;
        let end = self.pos.checked_add(len).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(eint(
                self.offset(),
                format!(
                    "{} section: {what} column overruns the payload ({} of {} bytes used)",
                    self.section,
                    self.pos,
                    self.bytes.len()
                ),
            ));
        };
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn count(&mut self) -> Result<u64, ParseError> {
        let b = self.take(8, "record count")?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn col_u64(&mut self, n: u64, what: &str) -> Result<ColU64<'a>, ParseError> {
        let len = n
            .checked_mul(8)
            .ok_or_else(|| eint(self.offset(), format!("{} count overflows", self.section)))?;
        Ok(ColU64::new(self.take(len, what)?))
    }

    fn col_f64(&mut self, n: u64, what: &str) -> Result<ColF64<'a>, ParseError> {
        Ok(ColF64::new(self.col_u64(n, what)?.bytes))
    }

    fn col_u32(&mut self, n: u64, what: &str) -> Result<ColU32<'a>, ParseError> {
        let len = n
            .checked_mul(4)
            .ok_or_else(|| eint(self.offset(), format!("{} count overflows", self.section)))?;
        let col = ColU32::new(self.take(len, what)?);
        self.take(padded(len) - len, "padding")?;
        Ok(col)
    }

    fn col_u8(&mut self, n: u64, what: &str) -> Result<&'a [u8], ParseError> {
        let col = self.take(n, what)?;
        self.take(padded(n) - n, "padding")?;
        Ok(col)
    }

    fn finish(&self) -> Result<(), ParseError> {
        if self.pos != self.bytes.len() {
            return Err(eint(
                self.offset(),
                format!(
                    "{} section: {} trailing payload bytes after the last column",
                    self.section,
                    self.bytes.len() - self.pos
                ),
            ));
        }
        Ok(())
    }
}

/// The machines section, as zero-copy columns.
struct MachineCols<'a> {
    n: usize,
    off: usize,
    cpu: ColF64<'a>,
    memory: ColF64<'a>,
    page_cache: ColF64<'a>,
}

/// The jobs section, as zero-copy columns.
struct JobCols<'a> {
    n: usize,
    off: usize,
    user: ColU32<'a>,
    priority: &'a [u8],
    submit: ColU64<'a>,
    completion: ColU64<'a>,
    cpu_seconds: ColF64<'a>,
    mean_memory: ColF64<'a>,
}

/// The tasks section, as zero-copy columns.
struct TaskCols<'a> {
    n: usize,
    off: usize,
    job: ColU32<'a>,
    priority: &'a [u8],
    submit: ColU64<'a>,
    cpu: ColF64<'a>,
    memory: ColF64<'a>,
    execution: ColU64<'a>,
    attempts: ColU32<'a>,
    resubmit: ColU64<'a>,
    outcome: &'a [u8],
}

/// The events section, as zero-copy columns.
struct EventCols<'a> {
    n: usize,
    off: usize,
    time: ColU64<'a>,
    task: ColU32<'a>,
    machine: ColU32<'a>,
    kind: &'a [u8],
}

/// The series section: per-series headers plus one shared sample block.
struct SeriesCols<'a> {
    s: usize,
    off: usize,
    machine: ColU32<'a>,
    start: ColU64<'a>,
    period: ColU64<'a>,
    count: ColU64<'a>,
    /// `10 × count_i` f64 lanes per series, concatenated.
    samples: &'a [u8],
    /// Byte offset of series `i`'s block within `samples` (s + 1 entries).
    sample_off: Vec<usize>,
}

impl<'a> SeriesCols<'a> {
    /// The ten sample columns of series `i`, in [`SAMPLE_FIELDS`] order.
    fn columns(&self, i: usize) -> [ColF64<'a>; 10] {
        let block = &self.samples[self.sample_off[i]..self.sample_off[i + 1]];
        let lane = block.len() / 10;
        std::array::from_fn(|k| ColF64::new(&block[k * lane..(k + 1) * lane]))
    }
}

/// A fully framed container: header decoded, every section's CRC
/// verified, every column bounds-checked. Records are *not* yet decoded
/// or structurally validated — that is the readers' job, so the batch
/// iterator can do it incrementally.
struct Container<'a> {
    system: &'a str,
    horizon: u64,
    machines: MachineCols<'a>,
    jobs: JobCols<'a>,
    tasks: TaskCols<'a>,
    events: EventCols<'a>,
    series: SeriesCols<'a>,
}

impl<'a> Container<'a> {
    fn parse(bytes: &'a [u8]) -> Result<Self, ParseError> {
        // --- header ---------------------------------------------------
        if !is_columnar(bytes) {
            return Err(eint(0, "not a binary trace container (bad magic)"));
        }
        if bytes.len() < 20 {
            return Err(eint(bytes.len(), "truncated container header"));
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(eint(
                4,
                format!("unsupported container version {version} (this build reads {FORMAT_VERSION})"),
            ));
        }
        let horizon = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let system_len = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
        let system_end = 20usize
            .checked_add(system_len)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| eint(16, "system name overruns the container"))?;
        let header_end = usize::try_from(padded(system_end as u64))
            .ok()
            .filter(|&p| p + 8 <= bytes.len())
            .ok_or_else(|| eint(system_end, "truncated container header"))?;
        let recorded =
            u32::from_le_bytes(bytes[header_end..header_end + 4].try_into().unwrap());
        let computed = crate::integrity::crc32(&bytes[..header_end]);
        if computed != recorded {
            return Err(eint(
                header_end,
                format!("header checksum mismatch: computed {computed:08x}, recorded {recorded:08x}"),
            ));
        }
        let system = std::str::from_utf8(&bytes[20..system_end])
            .map_err(|_| esyn(20, "system name is not valid UTF-8"))?;
        let mut pos = header_end + 8;

        // --- section framing + CRC ------------------------------------
        let mut payloads: [&'a [u8]; 5] = [&[]; 5];
        let mut offsets = [0usize; 5];
        for (i, tag) in SECTION_TAGS.iter().enumerate() {
            let name = section_name(i);
            if bytes.len() - pos < SECTION_HEADER + SECTION_TRAILER {
                return Err(eint(pos, format!("truncated container: {name} section missing")));
            }
            if &bytes[pos..pos + 4] != tag {
                return Err(eint(
                    pos,
                    format!(
                        "expected {name} section tag {:?}, found {:?}",
                        String::from_utf8_lossy(tag),
                        String::from_utf8_lossy(&bytes[pos..pos + 4])
                    ),
                ));
            }
            let payload_len = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().unwrap());
            if payload_len % 8 != 0 {
                return Err(eint(
                    pos + 8,
                    format!("{name} section: payload length {payload_len} is not 8-aligned"),
                ));
            }
            let payload_start = pos + SECTION_HEADER;
            let payload_end = usize::try_from(payload_len)
                .ok()
                .and_then(|l| payload_start.checked_add(l))
                .filter(|&e| e + SECTION_TRAILER <= bytes.len())
                .ok_or_else(|| {
                    eint(
                        pos + 8,
                        format!("{name} section: payload of {payload_len} bytes overruns the container"),
                    )
                })?;
            let payload = &bytes[payload_start..payload_end];
            let recorded = u32::from_le_bytes(bytes[payload_end..payload_end + 4].try_into().unwrap());
            let computed = crate::integrity::crc32(payload);
            if computed != recorded {
                return Err(eint(
                    payload_end,
                    format!(
                        "{name} section checksum mismatch: computed {computed:08x}, recorded {recorded:08x}"
                    ),
                ));
            }
            payloads[i] = payload;
            offsets[i] = payload_start;
            pos = payload_end + SECTION_TRAILER;
        }
        if pos != bytes.len() {
            return Err(eint(
                pos,
                format!("{} trailing bytes after the final section", bytes.len() - pos),
            ));
        }

        // --- column framing -------------------------------------------
        let mut p = Payload {
            bytes: payloads[0],
            pos: 0,
            base: offsets[0],
            section: "machines",
        };
        let n = p.count()?;
        let machines = MachineCols {
            n: count_to_usize(&p, n)?,
            off: p.base,
            cpu: p.col_f64(n, "cpu capacity")?,
            memory: p.col_f64(n, "memory capacity")?,
            page_cache: p.col_f64(n, "page-cache capacity")?,
        };
        p.finish()?;

        let mut p = Payload {
            bytes: payloads[1],
            pos: 0,
            base: offsets[1],
            section: "jobs",
        };
        let n = p.count()?;
        let jobs = JobCols {
            n: count_to_usize(&p, n)?,
            off: p.base,
            user: p.col_u32(n, "user id")?,
            priority: p.col_u8(n, "priority")?,
            submit: p.col_u64(n, "submit time")?,
            completion: p.col_u64(n, "completion time")?,
            cpu_seconds: p.col_f64(n, "cpu seconds")?,
            mean_memory: p.col_f64(n, "mean memory")?,
        };
        p.finish()?;

        let mut p = Payload {
            bytes: payloads[2],
            pos: 0,
            base: offsets[2],
            section: "tasks",
        };
        let n = p.count()?;
        let tasks = TaskCols {
            n: count_to_usize(&p, n)?,
            off: p.base,
            job: p.col_u32(n, "job id")?,
            priority: p.col_u8(n, "priority")?,
            submit: p.col_u64(n, "submit time")?,
            cpu: p.col_f64(n, "cpu demand")?,
            memory: p.col_f64(n, "mem demand")?,
            execution: p.col_u64(n, "execution time")?,
            attempts: p.col_u32(n, "attempts")?,
            resubmit: p.col_u64(n, "resubmit wait")?,
            outcome: p.col_u8(n, "outcome")?,
        };
        p.finish()?;

        let mut p = Payload {
            bytes: payloads[3],
            pos: 0,
            base: offsets[3],
            section: "events",
        };
        let n = p.count()?;
        let events = EventCols {
            n: count_to_usize(&p, n)?,
            off: p.base,
            time: p.col_u64(n, "time")?,
            task: p.col_u32(n, "task id")?,
            machine: p.col_u32(n, "machine id")?,
            kind: p.col_u8(n, "event kind")?,
        };
        p.finish()?;

        let mut p = Payload {
            bytes: payloads[4],
            pos: 0,
            base: offsets[4],
            section: "series",
        };
        let s = p.count()?;
        let machine = p.col_u32(s, "machine id")?;
        let start = p.col_u64(s, "start")?;
        let period = p.col_u64(s, "period")?;
        let count = p.col_u64(s, "sample count")?;
        let s_usize = count_to_usize(&p, s)?;
        let mut sample_off = Vec::with_capacity(s_usize + 1);
        sample_off.push(0usize);
        let mut total: usize = 0;
        for i in 0..s_usize {
            let block = count.get(i).checked_mul(80).and_then(|b| {
                usize::try_from(b)
                    .ok()
                    .and_then(|b| total.checked_add(b))
            });
            let Some(end) = block else {
                return Err(eint(
                    p.offset(),
                    format!("series {i}: sample count overflows the payload"),
                ));
            };
            total = end;
            sample_off.push(total);
        }
        let samples = p.take(total as u64, "samples")?;
        let series = SeriesCols {
            s: s_usize,
            off: offsets[4],
            machine,
            start,
            period,
            count,
            samples,
            sample_off,
        };
        p.finish()?;

        Ok(Container {
            system,
            horizon,
            machines,
            jobs,
            tasks,
            events,
            series,
        })
    }
}

fn section_name(i: usize) -> &'static str {
    ["machines", "jobs", "tasks", "events", "series"][i]
}

fn count_to_usize(p: &Payload<'_>, n: u64) -> Result<usize, ParseError> {
    usize::try_from(n).map_err(|_| {
        eint(
            p.base,
            format!("{} section: record count {n} does not fit in memory", p.section),
        )
    })
}

// ---------------------------------------------------------------------------
// Decoding: columns → records, with the text readers' structural checks
// ---------------------------------------------------------------------------

fn check_finite(v: f64, off: usize, i: usize, what: &str) -> Result<f64, ParseError> {
    if !v.is_finite() {
        return Err(esyn(off, format!("record {i}: non-finite {what}")));
    }
    Ok(v)
}

fn check_capacity(v: f64, off: usize, i: usize, what: &str) -> Result<f64, ParseError> {
    if !(v.is_finite() && v > 0.0 && v <= 1.0) {
        return Err(esyn(
            off,
            format!("machine {i}: {what} capacity {v} out of range (0, 1]"),
        ));
    }
    Ok(v)
}

fn machine_at(c: &MachineCols<'_>, i: usize) -> Result<MachineRecord, ParseError> {
    Ok(MachineRecord {
        id: MachineId(i as u32),
        cpu_capacity: check_capacity(c.cpu.get(i), c.off, i, "cpu")?,
        memory_capacity: check_capacity(c.memory.get(i), c.off, i, "memory")?,
        page_cache_capacity: check_capacity(c.page_cache.get(i), c.off, i, "page-cache")?,
    })
}

fn priority_at(levels: &[u8], off: usize, i: usize) -> Result<Priority, ParseError> {
    Priority::new(levels[i])
        .ok_or_else(|| esyn(off, format!("record {i}: priority {} out of range", levels[i])))
}

fn job_at(c: &JobCols<'_>, i: usize) -> Result<JobRecord, ParseError> {
    let completion = c.completion.get(i);
    Ok(JobRecord {
        id: JobId(i as u32),
        user: UserId(c.user.get(i)),
        priority: priority_at(c.priority, c.off, i)?,
        submit_time: c.submit.get(i),
        tasks: Vec::new(),
        completion_time: (completion != NO_COMPLETION).then_some(completion),
        cpu_seconds: check_finite(c.cpu_seconds.get(i), c.off, i, "cpu seconds")?,
        mean_memory: check_finite(c.mean_memory.get(i), c.off, i, "mean memory")?,
    })
}

fn task_at(c: &TaskCols<'_>, i: usize, jobs_total: usize) -> Result<TaskRecord, ParseError> {
    let job = c.job.get(i);
    if job as usize >= jobs_total {
        return Err(esyn(c.off, format!("task t{i} references unknown job j{job}")));
    }
    let outcome = outcome_from_code(c.outcome[i])
        .ok_or_else(|| esyn(c.off, format!("task t{i}: unknown outcome code {}", c.outcome[i])))?;
    Ok(TaskRecord {
        id: TaskId(i as u32),
        job: JobId(job),
        priority: priority_at(c.priority, c.off, i)?,
        submit_time: c.submit.get(i),
        demand: Demand {
            cpu: check_finite(c.cpu.get(i), c.off, i, "cpu demand")?,
            memory: check_finite(c.memory.get(i), c.off, i, "mem demand")?,
        },
        execution_time: c.execution.get(i),
        attempts: c.attempts.get(i),
        resubmit_wait: c.resubmit.get(i),
        outcome,
    })
}

/// Decodes event `i`, replaying the task life-cycle state machine —
/// `states` must hold one entry per task, in order.
fn event_at(c: &EventCols<'_>, i: usize, states: &mut [TaskState]) -> Result<TaskEvent, ParseError> {
    let task = c.task.get(i);
    let kind = event_kind_from_code(c.kind[i])
        .ok_or_else(|| esyn(c.off, format!("event {i}: unknown event kind code {}", c.kind[i])))?;
    let Some(state) = states.get_mut(task as usize) else {
        return Err(esyn(c.off, format!("event {i} references unknown task t{task}")));
    };
    let next = state
        .apply(kind)
        .map_err(|source| esyn(c.off, format!("event {i}: illegal event for task t{task}: {source}")))?;
    *state = next;
    let machine = c.machine.get(i);
    Ok(TaskEvent {
        time: c.time.get(i),
        task: TaskId(task),
        machine: (machine != NO_MACHINE).then_some(MachineId(machine)),
        kind,
    })
}

/// Validates series `i`'s header against the machine table and the
/// sampling-period invariant.
fn check_series_header(c: &SeriesCols<'_>, i: usize, machines_total: usize) -> Result<(), ParseError> {
    let machine = c.machine.get(i);
    if machine as usize >= machines_total {
        return Err(esyn(
            c.off,
            format!("series {i} references unknown machine {machine}"),
        ));
    }
    if c.period.get(i) == 0 {
        return Err(esyn(c.off, format!("series {i}: sampling period must be positive")));
    }
    Ok(())
}

fn sample_at(cols: &[ColF64<'_>; 10], off: usize, k: usize) -> Result<UsageSample, ParseError> {
    let mut v = [0f64; 10];
    for (slot, col) in v.iter_mut().zip(cols) {
        *slot = check_finite(col.get(k), off, k, "usage sample")?;
    }
    Ok(UsageSample {
        cpu: ClassSplit {
            low: v[0],
            middle: v[1],
            high: v[2],
        },
        memory_used: ClassSplit {
            low: v[3],
            middle: v[4],
            high: v[5],
        },
        memory_assigned: ClassSplit {
            low: v[6],
            middle: v[7],
            high: v[8],
        },
        page_cache: v[9],
    })
}

fn decode_machines(c: &MachineCols<'_>) -> Result<Vec<MachineRecord>, ParseError> {
    (0..c.n).map(|i| machine_at(c, i)).collect()
}

fn decode_jobs(c: &JobCols<'_>) -> Result<Vec<JobRecord>, ParseError> {
    (0..c.n).map(|i| job_at(c, i)).collect()
}

fn decode_tasks(c: &TaskCols<'_>, jobs_total: usize) -> Result<Vec<TaskRecord>, ParseError> {
    (0..c.n).map(|i| task_at(c, i, jobs_total)).collect()
}

fn decode_events(c: &EventCols<'_>, tasks_total: usize) -> Result<Vec<TaskEvent>, ParseError> {
    let mut states = vec![TaskState::Unsubmitted; tasks_total];
    (0..c.n).map(|i| event_at(c, i, &mut states)).collect()
}

fn decode_series(c: &SeriesCols<'_>, machines_total: usize) -> Result<Vec<HostSeries>, ParseError> {
    (0..c.s)
        .map(|i| {
            check_series_header(c, i, machines_total)?;
            let cols = c.columns(i);
            let count = c.count.get(i) as usize;
            let mut series = HostSeries {
                machine: MachineId(c.machine.get(i)),
                start: c.start.get(i),
                period: c.period.get(i),
                samples: Vec::with_capacity(count),
            };
            for k in 0..count {
                series.samples.push(sample_at(&cols, c.off, k)?);
            }
            Ok(series)
        })
        .collect()
}

/// Restores the `JobRecord::tasks` back-references the text writer emits
/// (tasks are dense and in order, so this reproduces them exactly).
fn link_job_tasks(jobs: &mut [JobRecord], tasks: &[TaskRecord]) {
    for t in tasks {
        jobs[t.job.index()].tasks.push(t.id);
    }
}

/// Parses a binary columnar container into a [`Trace`] — the binary
/// counterpart of [`read_trace`](crate::read_trace), exactly as strict:
/// every section CRC is verified and the decoded records must satisfy the
/// same structural invariants (dense ids, valid cross-references, a legal
/// event log). Never panics; see the module docs for error semantics.
pub fn read_trace_columnar(bytes: &[u8]) -> Result<Trace, ParseError> {
    let _span = cgc_obs::span(cgc_obs::stages::READ);
    let mut tally = IngestTally::new();
    tally.bytes = bytes.len() as u64;
    let c = Container::parse(bytes)?;
    let machines = decode_machines(&c.machines)?;
    let mut jobs = decode_jobs(&c.jobs)?;
    let tasks = decode_tasks(&c.tasks, jobs.len())?;
    let events = decode_events(&c.events, tasks.len())?;
    let host_series = decode_series(&c.series, machines.len())?;
    link_job_tasks(&mut jobs, &tasks);
    Ok(Trace {
        system: c.system.to_string(),
        horizon: c.horizon,
        machines,
        jobs,
        tasks,
        events,
        host_series,
    })
}

/// [`read_trace_columnar`] with the five table decodes fanned out on the
/// rayon pool. Output and errors are identical to the sequential reader:
/// framing and CRC checks run first (in order), the per-table decodes are
/// independent (cross-references only need the *counts* of the referenced
/// tables), and when several tables are corrupt the error reported is the
/// earliest section's — exactly the one the sequential reader hits first.
pub fn read_trace_columnar_parallel(bytes: &[u8]) -> Result<Trace, ParseError> {
    let _span = cgc_obs::span(cgc_obs::stages::READ);
    let mut tally = IngestTally::new();
    tally.bytes = bytes.len() as u64;
    let c = Container::parse(bytes)?;
    let (machines, (jobs, (tasks, (events, host_series)))) = rayon::join(
        || decode_machines(&c.machines),
        || {
            rayon::join(
                || decode_jobs(&c.jobs),
                || {
                    rayon::join(
                        || decode_tasks(&c.tasks, c.jobs.n),
                        || {
                            rayon::join(
                                || decode_events(&c.events, c.tasks.n),
                                || decode_series(&c.series, c.machines.n),
                            )
                        },
                    )
                },
            )
        },
    );
    let (machines, mut jobs, tasks, events, host_series) =
        (machines?, jobs?, tasks?, events?, host_series?);
    link_job_tasks(&mut jobs, &tasks);
    Ok(Trace {
        system: c.system.to_string(),
        horizon: c.horizon,
        machines,
        jobs,
        tasks,
        events,
        host_series,
    })
}

// ---------------------------------------------------------------------------
// Streaming: record batches off the columns
// ---------------------------------------------------------------------------

/// Streaming record-batch iterator over a binary container — the
/// columnar counterpart of [`TraceBatches`](crate::TraceBatches), feeding
/// `characterize_stream` without materializing the trace. Construction
/// verifies the container framing and every section CRC up front (the
/// bytes are already resident — typically a mapped file); record decoding
/// and the structural checks then run incrementally, batch by batch, with
/// the same strictness and the same errors as [`read_trace_columnar`].
///
/// Batches carry records in table order (machines, jobs, tasks, events,
/// then counted samples), each batch holding up to `batch_records` of
/// them. As with the text streamer, `JobRecord::tasks` back-references
/// are not populated — batch consumers must not rely on them.
pub struct ColumnarBatches<'a> {
    c: Container<'a>,
    batch_records: usize,
    bytes: u64,
    /// Decode cursors into each table.
    mi: usize,
    ji: usize,
    ti: usize,
    ei: usize,
    /// Series cursor: next series index and sample offset within it.
    si: usize,
    sk: usize,
    states: Vec<TaskState>,
    done: bool,
}

impl<'a> ColumnarBatches<'a> {
    /// Streams batches of [`DEFAULT_BATCH_RECORDS`](crate::DEFAULT_BATCH_RECORDS)
    /// records.
    pub fn new(bytes: &'a [u8]) -> Result<Self, ParseError> {
        Self::with_batch_records(bytes, crate::DEFAULT_BATCH_RECORDS)
    }

    /// Streams batches of at most `batch_records` records (the final
    /// batch may be smaller).
    ///
    /// # Panics
    /// If `batch_records` is zero.
    pub fn with_batch_records(bytes: &'a [u8], batch_records: usize) -> Result<Self, ParseError> {
        assert!(batch_records > 0, "batch size must be positive");
        let mut tally = IngestTally::new();
        tally.bytes = bytes.len() as u64;
        let c = Container::parse(bytes)?;
        let states = vec![TaskState::Unsubmitted; c.tasks.n];
        Ok(ColumnarBatches {
            c,
            batch_records,
            bytes: bytes.len() as u64,
            mi: 0,
            ji: 0,
            ti: 0,
            ei: 0,
            si: 0,
            sk: 0,
            states,
            done: false,
        })
    }

    /// The system name from the container header.
    pub fn system(&self) -> &str {
        self.c.system
    }

    /// The horizon from the container header.
    pub fn horizon(&self) -> u64 {
        self.c.horizon
    }

    /// Total container bytes (validated up front).
    pub fn bytes_read(&self) -> u64 {
        self.bytes
    }

    fn fill(&mut self, batch: &mut TraceBatch, budget: &mut usize) -> Result<(), ParseError> {
        let c = &self.c;
        while *budget > 0 && self.mi < c.machines.n {
            batch.machines.push(machine_at(&c.machines, self.mi)?);
            self.mi += 1;
            *budget -= 1;
        }
        while *budget > 0 && self.ji < c.jobs.n {
            batch.jobs.push(job_at(&c.jobs, self.ji)?);
            self.ji += 1;
            *budget -= 1;
        }
        while *budget > 0 && self.ti < c.tasks.n {
            batch.tasks.push(task_at(&c.tasks, self.ti, c.jobs.n)?);
            self.ti += 1;
            *budget -= 1;
        }
        while *budget > 0 && self.ei < c.events.n {
            batch.events.push(event_at(&c.events, self.ei, &mut self.states)?);
            self.ei += 1;
            *budget -= 1;
        }
        while *budget > 0 && self.si < c.series.s {
            if self.sk == 0 {
                check_series_header(&c.series, self.si, c.machines.n)?;
            }
            let count = c.series.count.get(self.si) as usize;
            if self.sk >= count {
                self.si += 1;
                self.sk = 0;
                continue;
            }
            let cols = c.series.columns(self.si);
            let take = (*budget).min(count - self.sk);
            for k in self.sk..self.sk + take {
                sample_at(&cols, c.series.off, k)?;
            }
            self.sk += take;
            batch.samples += take as u64;
            *budget -= take;
        }
        Ok(())
    }

    fn exhausted(&self) -> bool {
        let c = &self.c;
        self.mi == c.machines.n
            && self.ji == c.jobs.n
            && self.ti == c.tasks.n
            && self.ei == c.events.n
            && self.si == c.series.s
    }
}

impl Iterator for ColumnarBatches<'_> {
    type Item = Result<TraceBatch, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut batch = TraceBatch::default();
        let mut budget = self.batch_records;
        if let Err(e) = self.fill(&mut batch, &mut budget) {
            self.done = true;
            return Some(Err(e));
        }
        if self.exhausted() {
            self.done = true;
        }
        Some(Ok(batch))
    }
}

impl BatchSource for ColumnarBatches<'_> {
    fn next_batch(&mut self) -> Option<Result<TraceBatch, ParseError>> {
        self.next()
    }

    fn system(&self) -> &str {
        ColumnarBatches::system(self)
    }

    fn horizon(&self) -> u64 {
        ColumnarBatches::horizon(self)
    }

    fn bytes_read(&self) -> u64 {
        ColumnarBatches::bytes_read(self)
    }
}

// ---------------------------------------------------------------------------
// mmap
// ---------------------------------------------------------------------------

#[cfg(all(unix, target_pointer_width = "64"))]
mod mmap_sys {
    //! Raw `mmap`/`munmap` bindings against the C library the Rust
    //! standard library already links on Unix — no new dependency. Gated
    //! to 64-bit Unix, where `off_t` is an `i64` on every supported
    //! platform (Linux, macOS, the BSDs), keeping the declared ABI exact.

    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> c_int;
    }
}

/// A trace file's bytes, memory-mapped when the platform allows it and
/// read into an owned buffer otherwise. Dereferences to `&[u8]`; hand the
/// slice to [`read_trace_columnar`], [`read_trace_columnar_parallel`], or
/// [`ColumnarBatches`] — with a mapping, column accessors then read
/// straight from the page cache with no copy in between.
pub struct MappedTrace {
    inner: MapInner,
}

enum MapInner {
    Owned(Vec<u8>),
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped {
        ptr: std::ptr::NonNull<u8>,
        len: usize,
    },
}

// SAFETY: the mapping is private and read-only for its whole lifetime;
// sharing immutable views of it across threads (the parallel reader's
// rayon tasks) is sound.
unsafe impl Send for MappedTrace {}
unsafe impl Sync for MappedTrace {}

impl MappedTrace {
    /// Opens and maps `path` read-only, falling back to an ordinary read
    /// if mapping is unavailable (non-Unix targets, zero-length files, or
    /// an `mmap` refusal, e.g. on filesystems that forbid it).
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            use std::os::unix::io::AsRawFd;
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len();
            if len > 0 {
                if let Ok(len) = usize::try_from(len) {
                    let ptr = unsafe {
                        mmap_sys::mmap(
                            std::ptr::null_mut(),
                            len,
                            mmap_sys::PROT_READ,
                            mmap_sys::MAP_PRIVATE,
                            file.as_raw_fd(),
                            0,
                        )
                    };
                    // MAP_FAILED is (void*)-1; treat NULL as failure too.
                    if ptr as isize != -1 {
                        if let Some(ptr) = std::ptr::NonNull::new(ptr.cast::<u8>()) {
                            return Ok(MappedTrace {
                                inner: MapInner::Mapped { ptr, len },
                            });
                        }
                    }
                }
            }
        }
        Ok(MappedTrace {
            inner: MapInner::Owned(std::fs::read(path)?),
        })
    }

    /// The file's bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        match &self.inner {
            MapInner::Owned(v) => v,
            #[cfg(all(unix, target_pointer_width = "64"))]
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes, unmapped only in Drop.
            MapInner::Mapped { ptr, len } => unsafe {
                std::slice::from_raw_parts(ptr.as_ptr(), *len)
            },
        }
    }
}

impl std::ops::Deref for MappedTrace {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

impl Drop for MappedTrace {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        if let MapInner::Mapped { ptr, len } = self.inner {
            // SAFETY: exactly the region mmap returned; errors are
            // ignorable on unmap (the address space is ours).
            unsafe {
                mmap_sys::munmap(ptr.as_ptr().cast(), len);
            }
        }
    }
}

/// Maps (or reads) a trace file for zero-copy columnar access.
pub fn map_trace(path: impl AsRef<Path>) -> io::Result<MappedTrace> {
    MappedTrace::open(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{read_trace, write_trace, ParseErrorKind};
    use crate::trace::TraceBuilder;

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new("columnar-test", 7_200);
        let m0 = b.add_machine(0.5, 0.75, 1.0);
        let m1 = b.add_machine(1.0, 1.0, 1.0);
        let mut last = None;
        for ji in 0..7u64 {
            let j = b.add_job(
                UserId((ji % 3) as u32),
                Priority::from_level((ji % 12) as u8 + 1),
                ji * 60,
            );
            b.set_job_usage(j, 12.5 * (ji + 1) as f64, 0.012_5);
            for _ in 0..2 {
                let t = b.add_task(j, Demand::new(0.021, 0.013));
                b.push_event(TaskEvent {
                    time: ji * 60,
                    task: t,
                    machine: None,
                    kind: TaskEventKind::Submit,
                });
                b.push_event(TaskEvent {
                    time: ji * 60 + 3,
                    task: t,
                    machine: Some(m0),
                    kind: TaskEventKind::Schedule,
                });
                last = Some(t);
            }
        }
        b.push_event(TaskEvent {
            time: 500,
            task: last.unwrap(),
            machine: Some(m0),
            kind: TaskEventKind::Fail,
        });
        let mut s0 = HostSeries::new(m0, 0, 300);
        s0.samples = vec![
            UsageSample {
                cpu: ClassSplit {
                    low: 0.1,
                    middle: 0.2,
                    high: 0.3,
                },
                memory_used: ClassSplit {
                    low: 0.01,
                    middle: 0.02,
                    high: 0.03,
                },
                memory_assigned: ClassSplit {
                    low: 0.04,
                    middle: 0.05,
                    high: 0.06,
                },
                page_cache: 0.5,
            };
            5
        ];
        b.add_host_series(s0);
        let mut s1 = HostSeries::new(m1, 300, 300);
        s1.samples = vec![UsageSample::default(); 3];
        b.add_host_series(s1);
        b.build().expect("legal event sequence")
    }

    #[test]
    fn round_trips_bit_exactly() {
        let trace = sample_trace();
        let bytes = write_trace_columnar(&trace);
        assert!(is_columnar(&bytes));
        let back = read_trace_columnar(&bytes).expect("own output parses");
        assert_eq!(back, trace);
        // And through the text format: text → binary → text is
        // byte-identical (floats are stored as exact bit patterns).
        let text = write_trace(&trace);
        let via_binary = write_trace(&read_trace_columnar(&write_trace_columnar(
            &read_trace(&text).unwrap(),
        ))
        .unwrap());
        assert_eq!(via_binary, text);
    }

    #[test]
    fn parallel_reader_matches_sequential() {
        let trace = sample_trace();
        let bytes = write_trace_columnar(&trace);
        assert_eq!(
            read_trace_columnar_parallel(&bytes).expect("parses"),
            read_trace_columnar(&bytes).expect("parses")
        );
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = TraceBuilder::new("empty", 0).build().unwrap();
        let bytes = write_trace_columnar(&trace);
        let back = read_trace_columnar(&bytes).expect("empty container parses");
        assert_eq!(back, trace);
    }

    #[test]
    fn sentinels_do_not_collide_with_real_values() {
        let mut trace = sample_trace();
        // A real completion time one below the sentinel must survive.
        trace.jobs[0].completion_time = Some(u64::MAX - 1);
        trace.jobs[1].completion_time = None;
        let back = read_trace_columnar(&write_trace_columnar(&trace)).unwrap();
        assert_eq!(back.jobs[0].completion_time, Some(u64::MAX - 1));
        assert_eq!(back.jobs[1].completion_time, None);
    }

    #[test]
    fn batches_concatenate_to_the_full_trace() {
        let trace = sample_trace();
        let bytes = write_trace_columnar(&trace);
        let whole = read_trace_columnar(&bytes).unwrap();
        for batch_records in [1, 3, 7, 1 << 20] {
            let mut it = ColumnarBatches::with_batch_records(&bytes, batch_records).unwrap();
            let mut machines = Vec::new();
            let mut jobs = Vec::new();
            let mut tasks = Vec::new();
            let mut events = Vec::new();
            let mut samples = 0u64;
            for batch in &mut it {
                let batch = batch.expect("well-formed container");
                assert!(batch.records() <= batch_records as u64);
                machines.extend(batch.machines);
                jobs.extend(batch.jobs);
                tasks.extend(batch.tasks);
                events.extend(batch.events);
                samples += batch.samples;
            }
            assert_eq!(it.system(), whole.system);
            assert_eq!(it.horizon(), whole.horizon);
            assert_eq!(machines, whole.machines);
            assert_eq!(tasks, whole.tasks);
            assert_eq!(events, whole.events);
            assert_eq!(
                samples,
                whole
                    .host_series
                    .iter()
                    .map(|s| s.samples.len() as u64)
                    .sum::<u64>()
            );
            assert_eq!(jobs.len(), whole.jobs.len());
            for (a, b) in jobs.iter().zip(&whole.jobs) {
                let mut a = a.clone();
                a.tasks = b.tasks.clone();
                assert_eq!(&a, b);
            }
        }
    }

    #[test]
    fn empty_container_yields_one_empty_batch() {
        let trace = TraceBuilder::new("empty", 0).build().unwrap();
        let bytes = write_trace_columnar(&trace);
        let items: Vec<_> = ColumnarBatches::new(&bytes).unwrap().collect();
        assert_eq!(items.len(), 1);
        assert!(items[0].as_ref().unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_panics() {
        let bytes = write_trace_columnar(&sample_trace());
        let _ = ColumnarBatches::with_batch_records(&bytes, 0);
    }

    #[test]
    fn bad_magic_is_a_typed_error() {
        let mut bytes = write_trace_columnar(&sample_trace());
        bytes[0] = b'X';
        let err = read_trace_columnar(&bytes).expect_err("bad magic rejected");
        assert_eq!(err.kind, ParseErrorKind::Integrity);
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut bytes = write_trace_columnar(&sample_trace());
        bytes[4] = 0xFF;
        let err = read_trace_columnar(&bytes).expect_err("future version rejected");
        assert_eq!(err.kind, ParseErrorKind::Integrity);
        assert!(err.message.contains("version"), "{}", err.message);
    }

    #[test]
    fn flipped_payload_byte_fails_the_section_checksum() {
        let trace = sample_trace();
        let bytes = write_trace_columnar(&trace);
        // Flip one byte in every position of the container; every flip
        // must yield a typed error or (for the few bytes that are pure
        // padding or self-consistent) a clean parse — never a panic.
        let mut checksum_failures = 0;
        for at in (0..bytes.len()).step_by(7) {
            let mut dented = bytes.clone();
            dented[at] ^= 0x40;
            match read_trace_columnar(&dented) {
                Ok(t) => assert_eq!(t, trace, "silent divergence at byte {at}"),
                Err(e) => {
                    if e.message.contains("checksum") {
                        checksum_failures += 1;
                    }
                }
            }
        }
        assert!(checksum_failures > 0, "CRC must catch payload damage");
    }

    #[test]
    fn truncation_at_every_offset_is_caught() {
        let trace = sample_trace();
        let bytes = write_trace_columnar(&trace);
        for len in 0..bytes.len() {
            match read_trace_columnar(&bytes[..len]) {
                Ok(_) => panic!("truncation to {len} bytes parsed cleanly"),
                Err(e) => assert_eq!(e.kind, ParseErrorKind::Integrity, "offset {len}"),
            }
        }
    }

    #[test]
    fn mapped_file_matches_in_memory_bytes() {
        let trace = sample_trace();
        let bytes = write_trace_columnar(&trace);
        let path = std::env::temp_dir().join(format!("cgc-columnar-map-{}.cgcb", std::process::id()));
        crate::write_atomic(&path, &bytes).unwrap();
        let mapped = map_trace(&path).unwrap();
        assert_eq!(&*mapped, &bytes[..]);
        assert_eq!(read_trace_columnar_parallel(&mapped).unwrap(), trace);
        drop(mapped);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ingest_metrics_count_container_bytes() {
        cgc_obs::set_enabled(true);
        cgc_obs::metrics().reset();
        let bytes = write_trace_columnar(&sample_trace());
        let _ = read_trace_columnar(&bytes).unwrap();
        let c = cgc_obs::metrics().snapshot().counters;
        assert_eq!(c.bytes_read as usize, bytes.len());
        cgc_obs::metrics().reset();
    }
}
