//! Tasks: records, life-cycle state machine, and the event log.
//!
//! Section II of the paper describes the Google task life cycle: a newly
//! submitted task enters the *pending* queue, is scheduled onto a machine
//! (*running*), and eventually becomes *dead* — either by finishing normally
//! or abnormally (evicted by a higher-priority task, failed, killed by its
//! user, or lost). A dead task may be resubmitted, looping back to pending.
//!
//! [`TaskState::apply`] encodes exactly the legal transitions of the paper's
//! Figure 1, and the simulator's output is validated against it.

use crate::ids::{JobId, MachineId, TaskId};
use crate::priority::Priority;
use crate::resources::Demand;
use crate::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four states of the task life cycle (paper Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskState {
    /// Not yet submitted (or dead and awaiting resubmission).
    Unsubmitted,
    /// Waiting in the scheduler's pending queue.
    Pending,
    /// Executing on a machine.
    Running,
    /// Terminated, normally or abnormally.
    Dead,
}

/// Events a task can undergo, mirroring the Google trace event types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskEventKind {
    /// The task (re)enters the pending queue.
    Submit,
    /// The scheduler places the task on a machine.
    Schedule,
    /// A higher-priority task preempted this one (abnormal).
    Evict,
    /// The task failed, e.g. crashed (abnormal).
    Fail,
    /// The task completed normally.
    Finish,
    /// The user killed the task (abnormal).
    Kill,
    /// The task's source data went missing (abnormal).
    Lost,
    /// The user changed the task's constraints while pending.
    UpdatePending,
    /// The user changed the task's constraints while running.
    UpdateRunning,
}

impl TaskEventKind {
    /// All completion events, normal and abnormal.
    pub const COMPLETIONS: [TaskEventKind; 5] = [
        TaskEventKind::Evict,
        TaskEventKind::Fail,
        TaskEventKind::Finish,
        TaskEventKind::Kill,
        TaskEventKind::Lost,
    ];

    /// True if this event terminates an execution attempt.
    #[inline]
    pub fn is_completion(self) -> bool {
        matches!(
            self,
            TaskEventKind::Evict
                | TaskEventKind::Fail
                | TaskEventKind::Finish
                | TaskEventKind::Kill
                | TaskEventKind::Lost
        )
    }

    /// True if this is an *abnormal* completion (everything but `Finish`).
    ///
    /// The paper reports that 59.2% of the 44 million completion events are
    /// abnormal, half of them failures.
    #[inline]
    pub fn is_abnormal_completion(self) -> bool {
        self.is_completion() && self != TaskEventKind::Finish
    }
}

impl fmt::Display for TaskEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TaskEventKind::Submit => "SUBMIT",
            TaskEventKind::Schedule => "SCHEDULE",
            TaskEventKind::Evict => "EVICT",
            TaskEventKind::Fail => "FAIL",
            TaskEventKind::Finish => "FINISH",
            TaskEventKind::Kill => "KILL",
            TaskEventKind::Lost => "LOST",
            TaskEventKind::UpdatePending => "UPDATE_PENDING",
            TaskEventKind::UpdateRunning => "UPDATE_RUNNING",
        };
        f.write_str(s)
    }
}

/// Error returned by [`TaskState::apply`] on an illegal transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IllegalTransition {
    /// State the task was in.
    pub from: TaskState,
    /// Event that was attempted.
    pub event: TaskEventKind,
}

impl fmt::Display for IllegalTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "event {} is illegal in state {:?}",
            self.event, self.from
        )
    }
}

impl std::error::Error for IllegalTransition {}

impl TaskState {
    /// Applies an event, returning the successor state, or an error if the
    /// transition is not part of the paper's Figure 1.
    pub fn apply(self, event: TaskEventKind) -> Result<TaskState, IllegalTransition> {
        use TaskEventKind::*;
        use TaskState::*;
        let next = match (self, event) {
            // (1) submission and (6) resubmission both target the queue.
            (Unsubmitted, Submit) | (Dead, Submit) => Pending,
            // (2) resource allocation.
            (Pending, Schedule) => Running,
            // (3) constraint updates do not change the state.
            (Pending, UpdatePending) => Pending,
            (Running, UpdateRunning) => Running,
            // (4)/(5) every completion leads to the dead state. A pending
            // task can be killed or lost without ever running.
            (Running, Evict | Fail | Finish | Kill | Lost) => Dead,
            (Pending, Kill | Lost) => Dead,
            _ => return Err(IllegalTransition { from: self, event }),
        };
        Ok(next)
    }
}

/// One entry of the global task event log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskEvent {
    /// When the event occurred.
    pub time: Timestamp,
    /// The task concerned.
    pub task: TaskId,
    /// The machine involved, for `Schedule` and completion events.
    pub machine: Option<MachineId>,
    /// What happened.
    pub kind: TaskEventKind,
}

/// Final disposition of a task over its whole life (across resubmissions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskOutcome {
    /// Finished normally.
    Finished,
    /// Last attempt was evicted and not retried.
    Evicted,
    /// Last attempt failed and was not retried.
    Failed,
    /// Killed by the user.
    Killed,
    /// Lost.
    Lost,
    /// Still pending or running when the trace ended.
    Unfinished,
}

/// Per-task record with summary fields filled in by the trace builder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Task identifier.
    pub id: TaskId,
    /// Owning job.
    pub job: JobId,
    /// Scheduling priority (same for all tasks of a job).
    pub priority: Priority,
    /// First submission time.
    pub submit_time: Timestamp,
    /// Requested resources.
    pub demand: Demand,
    /// Total time spent in the `Running` state, summed over attempts.
    ///
    /// This is the paper's "task length" / "task execution time".
    pub execution_time: u64,
    /// Number of times the task was scheduled.
    pub attempts: u32,
    /// Total seconds between the end of one attempt and the start of the
    /// next, summed over resubmissions (scheduler backoff plus queueing).
    ///
    /// Zero for tasks scheduled at most once. Together with `attempts`
    /// this captures the crash-loop behaviour the paper observes in the
    /// Google trace: failed tasks are resubmitted over and over, inflating
    /// completion-event counts (§IV.B.1).
    pub resubmit_wait: u64,
    /// Final disposition.
    pub outcome: TaskOutcome,
}

impl TaskRecord {
    /// True if the task ever ran.
    #[inline]
    pub fn ever_ran(&self) -> bool {
        self.attempts > 0
    }

    /// Mean gap between consecutive attempts, in seconds.
    ///
    /// `None` for tasks scheduled at most once (no inter-attempt gaps).
    #[inline]
    pub fn mean_resubmit_gap(&self) -> Option<f64> {
        (self.attempts > 1).then(|| self.resubmit_wait as f64 / (self.attempts - 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_life_cycle() {
        let mut s = TaskState::Unsubmitted;
        for (event, expect) in [
            (TaskEventKind::Submit, TaskState::Pending),
            (TaskEventKind::Schedule, TaskState::Running),
            (TaskEventKind::Finish, TaskState::Dead),
        ] {
            s = s.apply(event).unwrap();
            assert_eq!(s, expect);
        }
    }

    #[test]
    fn resubmission_after_eviction() {
        let s = TaskState::Running.apply(TaskEventKind::Evict).unwrap();
        assert_eq!(s, TaskState::Dead);
        let s = s.apply(TaskEventKind::Submit).unwrap();
        assert_eq!(s, TaskState::Pending);
    }

    #[test]
    fn pending_task_can_be_killed_or_lost() {
        assert_eq!(
            TaskState::Pending.apply(TaskEventKind::Kill).unwrap(),
            TaskState::Dead
        );
        assert_eq!(
            TaskState::Pending.apply(TaskEventKind::Lost).unwrap(),
            TaskState::Dead
        );
    }

    #[test]
    fn updates_preserve_state() {
        assert_eq!(
            TaskState::Pending
                .apply(TaskEventKind::UpdatePending)
                .unwrap(),
            TaskState::Pending
        );
        assert_eq!(
            TaskState::Running
                .apply(TaskEventKind::UpdateRunning)
                .unwrap(),
            TaskState::Running
        );
    }

    #[test]
    fn illegal_transitions_are_rejected() {
        // Cannot schedule a task that was never submitted.
        assert!(TaskState::Unsubmitted
            .apply(TaskEventKind::Schedule)
            .is_err());
        // Cannot finish a pending task.
        assert!(TaskState::Pending.apply(TaskEventKind::Finish).is_err());
        // Cannot submit a running task.
        assert!(TaskState::Running.apply(TaskEventKind::Submit).is_err());
        // Cannot evict a dead task.
        assert!(TaskState::Dead.apply(TaskEventKind::Evict).is_err());
        // Update events are state-specific.
        assert!(TaskState::Running
            .apply(TaskEventKind::UpdatePending)
            .is_err());
        assert!(TaskState::Pending
            .apply(TaskEventKind::UpdateRunning)
            .is_err());
    }

    #[test]
    fn completion_classification() {
        assert!(TaskEventKind::Finish.is_completion());
        assert!(!TaskEventKind::Finish.is_abnormal_completion());
        for kind in [
            TaskEventKind::Evict,
            TaskEventKind::Fail,
            TaskEventKind::Kill,
            TaskEventKind::Lost,
        ] {
            assert!(kind.is_completion(), "{kind} should complete");
            assert!(kind.is_abnormal_completion(), "{kind} should be abnormal");
        }
        assert!(!TaskEventKind::Submit.is_completion());
        assert!(!TaskEventKind::Schedule.is_abnormal_completion());
    }

    #[test]
    fn mean_resubmit_gap_needs_two_attempts() {
        let mut r = TaskRecord {
            id: TaskId(0),
            job: JobId(0),
            priority: Priority::from_level(1),
            submit_time: 0,
            demand: Demand::new(0.01, 0.01),
            execution_time: 50,
            attempts: 1,
            resubmit_wait: 0,
            outcome: TaskOutcome::Finished,
        };
        assert_eq!(r.mean_resubmit_gap(), None);
        r.attempts = 4;
        r.resubmit_wait = 90;
        assert_eq!(r.mean_resubmit_gap(), Some(30.0));
    }

    #[test]
    fn error_display_is_informative() {
        let err = TaskState::Dead.apply(TaskEventKind::Finish).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("FINISH"));
        assert!(msg.contains("Dead"));
    }
}
