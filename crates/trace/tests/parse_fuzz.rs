//! Property tests: the trace parser never panics, however corrupt the
//! input. Random mutations of a valid serialized trace — byte flips,
//! insertions, deletions, line shuffles, truncation — must always yield
//! either a parsed trace or a `ParseError`, in both strict and lenient
//! mode.

use cgc_trace::{
    read_trace, read_trace_lenient, write_trace, ClassSplit, Demand, HostSeries, Priority,
    TaskEvent, TaskEventKind, TraceBuilder, UsageSample, UserId,
};
use proptest::prelude::*;

/// A small but fully featured trace: machines, jobs, tasks, a resubmission
/// loop, and a usage series — every section of the format appears.
fn base_text() -> String {
    let mut b = TraceBuilder::new("fuzz", 7_200);
    let m0 = b.add_machine(0.5, 0.75, 1.0);
    let m1 = b.add_machine(1.0, 1.0, 1.0);
    let j0 = b.add_job(UserId(3), Priority::from_level(9), 10);
    let j1 = b.add_job(UserId(4), Priority::from_level(2), 500);
    let t0 = b.add_task(j0, Demand::new(0.03, 0.015));
    let t1 = b.add_task(j1, Demand::new(0.2, 0.1));
    b.set_job_usage(j0, 120.5, 0.014);
    for (time, task, machine, kind) in [
        (10, t0, None, TaskEventKind::Submit),
        (12, t0, Some(m0), TaskEventKind::Schedule),
        (400, t0, Some(m0), TaskEventKind::Finish),
        (500, t1, None, TaskEventKind::Submit),
        (510, t1, Some(m1), TaskEventKind::Schedule),
        (800, t1, Some(m1), TaskEventKind::Fail),
        (860, t1, None, TaskEventKind::Submit),
        (870, t1, Some(m0), TaskEventKind::Schedule),
        (1_200, t1, Some(m0), TaskEventKind::Kill),
    ] {
        b.push_event(TaskEvent {
            time,
            task,
            machine,
            kind,
        });
    }
    let mut series = HostSeries::new(m0, 0, 300);
    for i in 0..4 {
        series.samples.push(UsageSample {
            cpu: ClassSplit {
                low: 0.01 * i as f64,
                middle: 0.0,
                high: 0.02,
            },
            memory_used: ClassSplit {
                low: 0.1,
                middle: 0.05,
                high: 0.0,
            },
            memory_assigned: ClassSplit {
                low: 0.12,
                middle: 0.06,
                high: 0.0,
            },
            page_cache: 0.07,
        });
    }
    b.add_host_series(series);
    write_trace(&b.build().expect("fixture is valid"))
}

/// Neither parser may panic; lenient warnings must carry in-range line
/// numbers and lenient must succeed structurally on any input.
fn check_no_panic(text: &str) {
    let _ = read_trace(text);
    let lenient = read_trace_lenient(text);
    let lines = text.lines().count();
    for w in &lenient.warnings {
        assert!(
            w.line >= 1 && w.line <= lines.max(1),
            "line {} of {lines}",
            w.line
        );
        assert!(!w.message.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary byte soup (printable-ish and control characters alike).
    #[test]
    fn arbitrary_input_never_panics(text in "[ -~\n,#.]{0,400}") {
        check_no_panic(&text);
    }

    /// Point mutations of a valid trace: overwrite bytes at random
    /// positions with random printable bytes.
    #[test]
    fn byte_overwrites_never_panic(
        edits in prop::collection::vec((any::<prop::sample::Index>(), 0x20u8..0x7f), 1..12)
    ) {
        let mut bytes = base_text().into_bytes();
        for (idx, byte) in edits {
            let i = idx.index(bytes.len());
            bytes[i] = byte;
        }
        let text = String::from_utf8_lossy(&bytes).into_owned();
        check_no_panic(&text);
    }

    /// Random insertions and deletions shift field and line boundaries.
    #[test]
    fn splices_never_panic(
        cut in any::<prop::sample::Index>(),
        len in 0usize..40,
        insert in "[ -~\n,]{0,30}",
        at in any::<prop::sample::Index>(),
    ) {
        let mut text = base_text();
        let start = floor_char(&text, cut.index(text.len()));
        let end = floor_char(&text, (start + len).min(text.len()));
        text.replace_range(start..end, "");
        let pos = floor_char(&text, at.index(text.len().max(1)).min(text.len()));
        text.insert_str(pos, &insert);
        check_no_panic(&text);
    }

    /// Dropping whole lines (including section headers) must degrade
    /// gracefully: strict errors out or succeeds, lenient salvages the rest.
    #[test]
    fn dropped_lines_never_panic(drop in prop::collection::vec(any::<bool>(), 0..64)) {
        let base = base_text();
        let text: String = base
            .lines()
            .enumerate()
            .filter(|(i, _)| !drop.get(*i).copied().unwrap_or(false))
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        check_no_panic(&text);
    }

    /// Truncation at an arbitrary character boundary (a partial download).
    #[test]
    fn truncation_never_panics(at in any::<prop::sample::Index>()) {
        let base = base_text();
        let cut = floor_char(&base, at.index(base.len() + 1).min(base.len()));
        check_no_panic(&base[..cut]);
    }

    /// Clean input is a fixed point: lenient agrees with strict and
    /// reports no warnings (guards against over-eager skipping).
    #[test]
    fn clean_input_round_trips(seed in 0u64..32) {
        // The fixture is deterministic; `seed` just re-runs the check so
        // it shares the harness with the mutation tests.
        let _ = seed;
        let text = base_text();
        let strict = read_trace(&text).expect("fixture parses");
        let lenient = read_trace_lenient(&text);
        prop_assert!(lenient.warnings.is_empty());
        prop_assert_eq!(lenient.trace, strict);
    }
}

/// Largest char boundary ≤ `i` (splices must not split UTF-8 sequences;
/// the fixture is ASCII but mutated text may not be).
fn floor_char(s: &str, mut i: usize) -> usize {
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}
