//! The reference (pre-optimization) analysis pipeline must be
//! bit-identical to the optimized one on a full simulated trace.
//!
//! `characterize_reference` is what `cgc-bench` times as the analysis
//! half of its seed-equivalent baseline; if it ever diverged from
//! `characterize` the reported speedup would compare different work.

use cgc_gen::{FleetConfig, GoogleWorkload};
use cgc_sim::{FaultConfig, SimConfig, Simulator};
use cgc_trace::HOUR;

#[test]
fn characterize_reference_is_bit_identical() {
    let w = GoogleWorkload::scaled_for_hostload(12, 6 * HOUR).generate(7);
    let config = SimConfig::google(FleetConfig::google(12)).with_faults(FaultConfig::google());
    let trace = Simulator::new(config).run(&w);
    assert!(
        trace.host_series.iter().any(|s| !s.is_empty()),
        "trace must exercise the host-load section"
    );

    let fast = cgc_core::characterize(&trace);
    let reference = cgc_core::characterize_reference(&trace);
    assert_eq!(fast, reference);
    // Serialized form too: PartialEq on f64 admits 0.0 == -0.0, but the
    // baseline claim is byte-level identity.
    assert_eq!(
        serde_json::to_string(&fast).unwrap(),
        serde_json::to_string(&reference).unwrap()
    );
}

#[test]
fn characterize_reference_on_empty_trace() {
    let trace = cgc_trace::TraceBuilder::new("empty", 100).build().unwrap();
    assert_eq!(
        cgc_core::characterize(&trace),
        cgc_core::characterize_reference(&trace)
    );
}
