//! End-to-end fault pipeline: generator → simulator with fault injection →
//! resubmission analyzer, checked against the paper's §IV.B.1 numbers.

use cgc_core::workload::{resubmission_analysis, CRASH_LOOP_ATTEMPTS};
use cgc_gen::{FleetConfig, GoogleWorkload, GridSystem, GridWorkload};
use cgc_sim::{FaultConfig, SimConfig, Simulator};
use cgc_trace::HOUR;

/// Google preset plus the calibrated fault model: the completion-event mix
/// lands on the paper's 59.2% abnormal share and the attempts-per-task
/// distribution is heavy-tailed (crash-loopers reach the attempt cap).
#[test]
fn google_faults_hit_paper_abnormal_share() {
    let w = GoogleWorkload::scaled_for_hostload(20, 12 * HOUR).generate(4);
    let config = SimConfig::google(FleetConfig::google(20)).with_faults(FaultConfig::google());
    let trace = Simulator::new(config).run(&w);
    let a = resubmission_analysis(&trace).expect("tasks ran");

    assert!(a.completions.total() > 300, "too few completions");
    // Paper: 59.2% of completion events are abnormal. The acceptance band
    // is ±3 points.
    assert!(
        (a.abnormal_fraction - 0.592).abs() < 0.03,
        "abnormal={:.3}",
        a.abnormal_fraction
    );
    // Failures dominate the abnormal events (paper: ~50%), kills follow
    // (paper: ~30.7%).
    assert!(
        (a.fail_share_of_abnormal - 0.5).abs() < 0.2,
        "fail share={:.3}",
        a.fail_share_of_abnormal
    );
    assert!(
        a.kill_share_of_abnormal > 0.1,
        "kill share={:.3}",
        a.kill_share_of_abnormal
    );

    // Heavy tail: most tasks take one attempt, but crash-loopers push the
    // maximum to the attempt cap and beyond the analyzer's looper bar.
    assert!(
        a.max_attempts >= CRASH_LOOP_ATTEMPTS,
        "max attempts={}",
        a.max_attempts
    );
    assert!(a.crash_looper_tasks >= 1, "no crash-loopers detected");
    assert!(a.mean_attempts < 3.0, "mean attempts={}", a.mean_attempts);
    let cdf = a.attempts_cdf().expect("cdf present");
    assert!(
        cdf.eval(1.0) > 0.5,
        "most tasks should finish in one attempt: F(1)={}",
        cdf.eval(1.0)
    );
    // Backoff shows up as non-zero inter-attempt gaps.
    assert!(a.mean_resubmit_gap > 0.0);
}

/// Grid preset plus grid faults: tasks almost always finish (paper:
/// abnormal share below 10%, the other extreme of the comparison).
#[test]
fn grid_faults_stay_mostly_normal() {
    let w = GridWorkload::scaled(GridSystem::AuverGrid, 24 * HOUR, 0.2).generate(3);
    let config = SimConfig::grid(FleetConfig::homogeneous(16)).with_faults(FaultConfig::grid());
    let trace = Simulator::new(config).run(&w);
    let a = resubmission_analysis(&trace).expect("tasks ran");

    assert!(
        a.abnormal_fraction < 0.10,
        "grid abnormal={:.3}",
        a.abnormal_fraction
    );
    // Grid tasks rarely loop: the attempts distribution is short-tailed.
    assert!(a.mean_attempts < 1.2, "mean attempts={}", a.mean_attempts);
}

/// The characterization report carries the resubmission section for any
/// trace in which tasks ran.
#[test]
fn report_includes_resubmission_section() {
    let w = GoogleWorkload::scaled_for_hostload(6, 3 * HOUR).generate(2);
    let config = SimConfig::google(FleetConfig::google(6)).with_faults(FaultConfig::google());
    let trace = Simulator::new(config).run(&w);
    let report = cgc_core::characterize(&trace);
    let r = report
        .workload
        .resubmission
        .as_ref()
        .expect("section present");
    assert_eq!(r.system, trace.system);
    // The Display output mentions the completion mix.
    assert!(report.to_string().contains("completions:"));
}
