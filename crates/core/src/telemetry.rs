//! Sim-time telemetry reconstructed from a trace's event log.
//!
//! [`telemetry_from_trace`] replays a [`Trace`]'s task events against the
//! same sim-time tick rule the engine's live probe uses — a tick at `T`
//! reflects every event with `time < T` — so for the fields a trace can
//! express (pending depth per band, running count, queueing-delay /
//! resubmit-wait / run-length histograms) the replayed bundle matches
//! the engine's exactly. `tests/telemetry.rs` pins that equivalence.
//!
//! Two fields are engine-internal and cannot be reconstructed: the event
//! heap and the blacklist, reported as zero. Free capacity is measured
//! against *nominal* machine capacity minus the assigned demand of
//! running tasks (the engine packs against overcommitted capacity and
//! knows about outages, so its numbers differ by design); the bundle's
//! `source: "trace-replay"` tag marks those caveats for consumers.

use cgc_obs::{TelemetryBundle, TimelineSample, NUM_BANDS};
use cgc_trace::task::TaskEventKind;
use cgc_trace::{Timestamp, Trace};

/// Per-task replay state, mirroring the engine probe's bookkeeping.
struct ReplayTask {
    band: usize,
    /// First submission time; `u64::MAX` until the first Submit.
    first_submit: Timestamp,
    /// Start of the current attempt; `u64::MAX` while not running.
    started: Timestamp,
    /// End of the previous attempt; `u64::MAX` if none yet.
    last_end: Timestamp,
    ever_placed: bool,
    pending: bool,
}

/// Derives a [`TelemetryBundle`] from a trace by event replay; see the
/// module docs for what is exact and what is approximated.
pub fn telemetry_from_trace(trace: &Trace, interval: u64) -> TelemetryBundle {
    let interval = interval.max(1);
    let mut bundle = TelemetryBundle::new("trace-replay", interval, trace.horizon);

    let mut tasks: Vec<ReplayTask> = trace
        .tasks
        .iter()
        .map(|t| ReplayTask {
            band: t.priority.class().index(),
            first_submit: Timestamp::MAX,
            started: Timestamp::MAX,
            last_end: Timestamp::MAX,
            ever_placed: false,
            pending: false,
        })
        .collect();

    // Fleet-wide aggregates, updated incrementally per event.
    let mut pending = [0u64; NUM_BANDS];
    let mut running = 0u64;
    let nominal_cpu: f64 = trace.machines.iter().map(|m| m.cpu_capacity).sum();
    let nominal_memory: f64 = trace.machines.iter().map(|m| m.memory_capacity).sum();
    let mut assigned_cpu = 0.0f64;
    let mut assigned_memory = 0.0f64;

    let mut next_tick: Timestamp = 0;
    let tick = |bundle: &mut TelemetryBundle,
                pending: &[u64; NUM_BANDS],
                running: u64,
                assigned: (f64, f64),
                t: Timestamp| {
        bundle.push_tick(
            TimelineSample {
                t,
                pending: *pending,
                running,
                heap_events: 0,
                blacklisted: 0,
            },
            nominal_cpu - assigned.0,
            nominal_memory - assigned.1,
        );
    };

    for ev in &trace.events {
        // The engine stops at the horizon; a well-formed trace has no
        // events past it, but stay defensive for hand-built ones.
        if ev.time >= trace.horizon {
            break;
        }
        while next_tick <= ev.time {
            tick(
                &mut bundle,
                &pending,
                running,
                (assigned_cpu, assigned_memory),
                next_tick,
            );
            next_tick = next_tick.saturating_add(interval);
        }
        let task = &mut tasks[ev.task.index()];
        let demand = trace.tasks[ev.task.index()].demand;
        match ev.kind {
            TaskEventKind::Submit => {
                if task.first_submit == Timestamp::MAX {
                    task.first_submit = ev.time;
                }
                if !task.pending {
                    task.pending = true;
                    pending[task.band] += 1;
                }
            }
            TaskEventKind::Schedule => {
                if task.pending {
                    task.pending = false;
                    pending[task.band] -= 1;
                }
                if !task.ever_placed {
                    task.ever_placed = true;
                    bundle.queue_delay[task.band].record(ev.time.saturating_sub(task.first_submit));
                }
                if task.last_end != Timestamp::MAX {
                    bundle
                        .resubmit_wait
                        .record(ev.time.saturating_sub(task.last_end));
                }
                if task.started == Timestamp::MAX {
                    running += 1;
                    assigned_cpu += demand.cpu;
                    assigned_memory += demand.memory;
                }
                task.started = ev.time;
            }
            TaskEventKind::Finish
            | TaskEventKind::Evict
            | TaskEventKind::Fail
            | TaskEventKind::Kill
            | TaskEventKind::Lost => {
                if task.started != Timestamp::MAX {
                    bundle
                        .run_length
                        .record(ev.time.saturating_sub(task.started));
                    task.started = Timestamp::MAX;
                    task.last_end = ev.time;
                    running -= 1;
                    assigned_cpu -= demand.cpu;
                    assigned_memory -= demand.memory;
                }
            }
            TaskEventKind::UpdatePending | TaskEventKind::UpdateRunning => {}
        }
    }
    while next_tick < trace.horizon {
        tick(
            &mut bundle,
            &pending,
            running,
            (assigned_cpu, assigned_memory),
            next_tick,
        );
        next_tick = next_tick.saturating_add(interval);
    }
    bundle
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_trace::{Demand, Priority, TraceBuilder};

    /// A tiny hand-built trace: one job, two tasks, one retry.
    fn build_trace() -> Trace {
        let mut b = TraceBuilder::new("test", 1000);
        b.add_machine(1.0, 1.0, 0.5);
        let job = b.add_job(1u32.into(), Priority::new(10).unwrap(), 0);
        let t0 = b.add_task(job, Demand::new(0.25, 0.25));
        let t1 = b.add_task(job, Demand::new(0.25, 0.25));
        for (time, task, machine, kind) in [
            (0u64, t0, None, TaskEventKind::Submit),
            (0, t1, None, TaskEventKind::Submit),
            (10, t0, Some(0u32), TaskEventKind::Schedule),
            (40, t1, Some(0), TaskEventKind::Schedule),
            (300, t0, Some(0), TaskEventKind::Fail),
            (360, t0, None, TaskEventKind::Submit),
            (400, t0, Some(0), TaskEventKind::Schedule),
            (700, t0, Some(0), TaskEventKind::Finish),
            (900, t1, Some(0), TaskEventKind::Finish),
        ] {
            b.push_event(cgc_trace::task::TaskEvent {
                time,
                task,
                machine: machine.map(Into::into),
                kind,
            });
        }
        b.build().expect("legal event sequence")
    }

    #[test]
    fn replay_reconstructs_queues_and_histograms() {
        let trace = build_trace();
        let bundle = telemetry_from_trace(&trace, 100);
        assert_eq!(bundle.source, "trace-replay");
        assert_eq!(bundle.timeline.len(), 10, "ticks at 0,100,…,900");

        // Tick at t=0 fires before any event: empty cluster.
        assert_eq!(bundle.timeline[0].pending, [0, 0, 0]);
        assert_eq!(bundle.timeline[0].running, 0);
        // Tick at t=100 sees both tasks scheduled (events at 10 and 40).
        assert_eq!(bundle.timeline[1].running, 2);
        // Tick at t=400 sees t0 failed at 300, resubmitted at 360:
        // one pending high-band task, one running.
        assert_eq!(bundle.timeline[4].pending, [0, 0, 1]);
        assert_eq!(bundle.timeline[4].running, 1);
        // Free capacity = nominal minus assigned demand of running tasks.
        assert!((bundle.capacity[0].free_cpu - 1.0).abs() < 1e-12);
        assert!((bundle.capacity[1].free_cpu - 0.5).abs() < 1e-12);

        // Queue delay: first placements only (10-0=10, 40-0=40), high band.
        assert_eq!(bundle.queue_delay[2].count(), 2);
        assert_eq!(bundle.queue_delay[2].min(), Some(10));
        assert_eq!(bundle.queue_delay[2].max(), Some(40));
        // Resubmit wait: 400-300 = 100.
        assert_eq!(bundle.resubmit_wait.count(), 1);
        assert_eq!(bundle.resubmit_wait.min(), Some(100));
        // Run lengths: 290 (t0 first attempt), 300 (t0 retry), 860 (t1).
        assert_eq!(bundle.run_length.count(), 3);
        assert_eq!(bundle.run_length.sum(), 290 + 300 + 860);
    }
}
