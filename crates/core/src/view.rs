//! Shared derived products of one trace, computed at most once.
//!
//! Several analyses re-derive the same intermediates from a
//! [`Trace`]: the sorted submission timestamps, the job/task length
//! vectors, and — by far the heaviest — the per-machine per-attribute
//! usage series with their capacities and peaks. [`TraceView`] wraps a
//! borrowed trace and memoizes each product behind a [`OnceLock`], so the
//! analysis passes driven by [`crate::report::characterize`] (and any
//! external consumer, e.g. the plot-data exporter) share one computation
//! and one allocation per product.
//!
//! Every cached product is stored in its *raw* form — attribute values
//! are not pre-divided by capacity — because consumers scale differently
//! (`v / cap` for level bands, `100.0 * v / cap` for mass–count
//! percentages) and the two expressions are not bit-identical when
//! reassociated. Keeping raw values lets each consumer apply its own
//! arithmetic and reproduce the pre-refactor reports byte for byte.

use cgc_trace::usage::UsageAttribute;
use cgc_trace::{MachineRecord, Timestamp, Trace};
use rayon::prelude::*;
use std::sync::OnceLock;

/// The capacity of `m` governing attribute `attr` (memory attributes
/// share the memory capacity).
pub(crate) fn capacity_for(m: &MachineRecord, attr: UsageAttribute) -> f64 {
    match attr {
        UsageAttribute::Cpu => m.cpu_capacity,
        UsageAttribute::MemoryUsed | UsageAttribute::MemoryAssigned => m.memory_capacity,
        UsageAttribute::PageCache => m.page_cache_capacity,
    }
}

/// One attribute extracted from every non-empty host series, in trace
/// order: the machine's capacity for the attribute, the series' sampling
/// period, the raw per-sample values, and their peak.
///
/// Index `i` of each vector refers to the `i`-th non-empty entry of
/// [`Trace::host_series`].
#[derive(Debug, Clone, Default)]
pub struct AttributeSeries {
    /// Capacity of the owning machine for this attribute.
    pub capacities: Vec<f64>,
    /// Sampling period of each series, in seconds.
    pub periods: Vec<u64>,
    /// Raw attribute values per sample (not scaled by capacity).
    pub values: Vec<Vec<f64>>,
    /// Peak raw value per series (`fold(0.0, f64::max)`, matching
    /// [`HostSeries::max_attribute`](cgc_trace::HostSeries::max_attribute)).
    pub peaks: Vec<f64>,
}

impl AttributeSeries {
    /// Number of (non-empty) series captured.
    pub fn len(&self) -> usize {
        self.capacities.len()
    }

    /// Whether no machine reported samples.
    pub fn is_empty(&self) -> bool {
        self.capacities.is_empty()
    }
}

fn attribute_slot(attr: UsageAttribute) -> usize {
    match attr {
        UsageAttribute::Cpu => 0,
        UsageAttribute::MemoryUsed => 1,
        UsageAttribute::MemoryAssigned => 2,
        UsageAttribute::PageCache => 3,
    }
}

/// Borrowed trace plus lazily cached derived products.
///
/// Cheap to construct (no product is computed until asked for) and
/// `Sync`, so parallel analysis passes can share one view; the first
/// pass to ask for a product computes it, later ones reuse it.
pub struct TraceView<'a> {
    trace: &'a Trace,
    submission_times: OnceLock<Vec<Timestamp>>,
    job_lengths: OnceLock<Vec<u64>>,
    task_execution_times: OnceLock<Vec<u64>>,
    attributes: [OnceLock<AttributeSeries>; 4],
}

impl<'a> TraceView<'a> {
    /// Wraps a trace. No derived product is computed yet.
    pub fn new(trace: &'a Trace) -> Self {
        TraceView {
            trace,
            submission_times: OnceLock::new(),
            job_lengths: OnceLock::new(),
            task_execution_times: OnceLock::new(),
            attributes: [
                OnceLock::new(),
                OnceLock::new(),
                OnceLock::new(),
                OnceLock::new(),
            ],
        }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &'a Trace {
        self.trace
    }

    /// Job submission times, ascending (computed once).
    pub fn submission_times(&self) -> &[Timestamp] {
        self.submission_times.get_or_init(|| {
            let mut times: Vec<Timestamp> = self.trace.jobs.iter().map(|j| j.submit_time).collect();
            times.sort_unstable();
            times
        })
    }

    /// Lengths of all finished jobs, in seconds, in job order (computed
    /// once).
    pub fn job_lengths(&self) -> &[u64] {
        self.job_lengths
            .get_or_init(|| self.trace.jobs.iter().filter_map(|j| j.length()).collect())
    }

    /// Execution times of all tasks that ever ran, in task order
    /// (computed once).
    pub fn task_execution_times(&self) -> &[u64] {
        self.task_execution_times.get_or_init(|| {
            self.trace
                .tasks
                .iter()
                .filter(|t| t.ever_ran())
                .map(|t| t.execution_time)
                .collect()
        })
    }

    /// One attribute over every non-empty host series (computed once per
    /// attribute). The extraction scans every sample of every machine —
    /// the heavy part of the host-load analyses — so it fans out over the
    /// rayon pool; order is preserved.
    pub fn attribute_series(&self, attr: UsageAttribute) -> &AttributeSeries {
        self.attributes[attribute_slot(attr)].get_or_init(|| {
            let per_series: Vec<(f64, u64, Vec<f64>, f64)> = self
                .trace
                .host_series
                .par_iter()
                .filter(|s| !s.is_empty())
                .map(|s| {
                    let m = &self.trace.machines[s.machine.index()];
                    let cap = capacity_for(m, attr);
                    let values = s.attribute(attr, None);
                    let peak = values.iter().copied().fold(0.0, f64::max);
                    (cap, s.period, values, peak)
                })
                .collect();
            let mut out = AttributeSeries::default();
            for (cap, period, values, peak) in per_series {
                out.capacities.push(cap);
                out.periods.push(period);
                out.values.push(values);
                out.peaks.push(peak);
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_trace::usage::{ClassSplit, HostSeries, UsageSample};
    use cgc_trace::TraceBuilder;

    fn sample(cpu: f64) -> UsageSample {
        UsageSample {
            cpu: ClassSplit {
                low: cpu,
                middle: 0.0,
                high: 0.0,
            },
            memory_used: ClassSplit::ZERO,
            memory_assigned: ClassSplit::ZERO,
            page_cache: 0.0,
        }
    }

    fn trace() -> Trace {
        let mut b = TraceBuilder::new("v", 900);
        let m0 = b.add_machine(0.5, 0.5, 1.0);
        let m1 = b.add_machine(1.0, 1.0, 1.0);
        let mut s0 = HostSeries::new(m0, 0, 300);
        s0.samples.extend([sample(0.1), sample(0.4)]);
        b.add_host_series(s0);
        // m1 reports an empty series: must be skipped.
        b.add_host_series(HostSeries::new(m1, 0, 300));
        b.build().unwrap()
    }

    #[test]
    fn attribute_series_skips_empty_and_keeps_raw_values() {
        let t = trace();
        let view = TraceView::new(&t);
        let a = view.attribute_series(UsageAttribute::Cpu);
        assert_eq!(a.len(), 1);
        assert_eq!(a.capacities, vec![0.5]);
        assert_eq!(a.periods, vec![300]);
        assert_eq!(a.values[0], vec![0.1, 0.4]);
        assert_eq!(a.peaks, vec![0.4]);
    }

    #[test]
    fn cached_products_match_the_trace_helpers() {
        let t = trace();
        let view = TraceView::new(&t);
        assert_eq!(view.submission_times(), &t.submission_times()[..]);
        assert_eq!(view.task_execution_times(), &t.task_execution_times()[..]);
        assert_eq!(view.job_lengths(), &t.job_lengths()[..]);
        // Second call returns the same cached slice.
        let first = view.submission_times().as_ptr();
        assert_eq!(view.submission_times().as_ptr(), first);
    }
}
