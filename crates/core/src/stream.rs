//! Out-of-core characterization: the workload passes fed batch-by-batch.
//!
//! [`characterize_stream`] runs the same registry as
//! [`characterize`](crate::report::characterize), but feeds it record
//! batches from [`cgc_trace::TraceBatches`] instead of a materialized
//! [`Trace`](cgc_trace::Trace) — memory stays bounded by the batch size
//! plus the pass accumulators. In exact mode (the default) the workload
//! section is bit-identical to the in-memory report; with
//! [`StreamOptions::approx`] the accumulators themselves become bounded
//! (streaming moments plus reservoir samples) at the cost of
//! approximate medians, curves, and mass–count shapes.
//!
//! Host-load analyses need whole per-machine series and therefore cannot
//! stream: the report's `hostload` is always `None` here, and callers
//! should point users at the in-memory path when the stream carried
//! usage samples ([`StreamStats::samples`] `> 0`).

use crate::pass::{self, PassContext};
use crate::report::CharacterizationReport;
use cgc_trace::columnar::ColumnarBatches;
use cgc_trace::io::ParseError;
use cgc_trace::{BatchSource, TraceBatch, TraceBatches, DEFAULT_BATCH_RECORDS};
use serde::Serialize;
use std::io::BufRead;

/// Tuning knobs for [`characterize_stream`].
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Records per batch (the final batch may be smaller). Must be
    /// positive.
    pub batch_records: usize,
    /// Bound accumulator memory with reservoir sampling instead of exact
    /// value vectors. Summaries keep exact counts/extrema/means; medians
    /// and distribution shapes become sample estimates.
    pub approx: bool,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            batch_records: DEFAULT_BATCH_RECORDS,
            approx: false,
        }
    }
}

/// What one streaming run saw and spent.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct StreamStats {
    /// Batches processed (at least one, even for empty input).
    pub batches: u64,
    /// Machine records seen.
    pub machines: u64,
    /// Job records seen.
    pub jobs: u64,
    /// Task records seen.
    pub tasks: u64,
    /// Task events seen.
    pub events: u64,
    /// Usage samples seen — and dropped: host-load analyses don't stream.
    pub samples: u64,
    /// Bytes consumed from the reader.
    pub bytes_read: u64,
    /// Peak total accumulator footprint across the passes, sampled at
    /// batch boundaries.
    pub peak_accumulator_bytes: u64,
    /// Whether accumulators were bounded ([`StreamOptions::approx`]).
    pub approx: bool,
}

/// Characterizes a trace from a reader without materializing it.
///
/// Parsing is exactly as strict as [`cgc_trace::read_trace`]: the first
/// malformed line aborts with the same [`ParseError`].
///
/// # Panics
/// If [`StreamOptions::batch_records`] is zero.
pub fn characterize_stream<R: BufRead>(
    reader: R,
    opts: &StreamOptions,
) -> Result<(CharacterizationReport, StreamStats), ParseError> {
    characterize_batches(
        TraceBatches::with_batch_records(reader, opts.batch_records),
        opts,
    )
}

/// [`characterize_stream`] over a binary columnar container (typically a
/// [`map_trace`](cgc_trace::map_trace)d file): the same passes, fed by
/// [`ColumnarBatches`] — batches are decoded straight from the column
/// blocks, so no line of text is ever materialized. Container framing
/// and checksums are verified up front; a corrupt container fails here
/// before any pass runs.
///
/// # Panics
/// If [`StreamOptions::batch_records`] is zero.
pub fn characterize_stream_columnar(
    bytes: &[u8],
    opts: &StreamOptions,
) -> Result<(CharacterizationReport, StreamStats), ParseError> {
    characterize_batches(
        ColumnarBatches::with_batch_records(bytes, opts.batch_records)?,
        opts,
    )
}

/// The format-agnostic core of the streaming path: runs the workload
/// passes over any [`BatchSource`] by driving a
/// [`StreamingCharacterizer`] to completion.
pub fn characterize_batches<S: BatchSource>(
    mut batches: S,
    opts: &StreamOptions,
) -> Result<(CharacterizationReport, StreamStats), ParseError> {
    let mut characterizer = StreamingCharacterizer::new(opts);
    while let Some(batch) = batches.next_batch() {
        characterizer.observe_batch(&batch?);
    }
    characterizer.set_bytes_read(batches.bytes_read());
    Ok(characterizer.finish(batches.system(), batches.horizon()))
}

/// The incremental heart of streaming characterization: the analysis
/// passes held open across batches, fed one [`TraceBatch`] at a time.
///
/// [`characterize_batches`] (and through it `characterize_stream` and
/// `characterize_stream_columnar`) is a thin pull-driven wrapper around
/// this type; push-driven consumers — the fused sim→characterize
/// pipeline, or a future always-on characterization service (ROADMAP
/// item 5b) — drive it directly: construct, call
/// [`observe_batch`](Self::observe_batch) as record chunks arrive (in
/// canonical record order), then [`finish`](Self::finish) once for the
/// report.
///
/// Because every pass observes records in a strict per-type order
/// (jobs, then tasks, then events within each batch, with each section's
/// records arriving in record order across batches), the finished report
/// is **independent of how records were chunked into batches** — the
/// invariant the determinism suite pins. The obs span opened at
/// construction covers the whole incremental run, so stage timings for
/// fused and file-backed streaming land in the same
/// [`STREAM`](cgc_obs::stages::STREAM) slot.
pub struct StreamingCharacterizer {
    passes: Vec<Box<dyn pass::AnalysisPass>>,
    stats: StreamStats,
    /// Root span for the whole streaming run; child sweep spans re-parent
    /// under its id. Held until `finish` so the recorded duration spans
    /// construction → report.
    span: cgc_obs::Span,
}

impl StreamingCharacterizer {
    /// Opens the pass registry (exact or approx per
    /// [`StreamOptions::approx`]) and the covering obs span.
    pub fn new(opts: &StreamOptions) -> Self {
        let span = cgc_obs::span(cgc_obs::stages::STREAM);
        StreamingCharacterizer {
            passes: pass::workload_passes(opts.approx),
            stats: StreamStats {
                batches: 0,
                machines: 0,
                jobs: 0,
                tasks: 0,
                events: 0,
                samples: 0,
                bytes_read: 0,
                peak_accumulator_bytes: 0,
                approx: opts.approx,
            },
            span,
        }
    }

    /// Feeds one batch through every pass and folds it into the running
    /// stats. Batches must arrive in record order.
    pub fn observe_batch(&mut self, batch: &TraceBatch) {
        let root = self.span.id();
        let passes = &mut self.passes;
        pass::spanned(cgc_obs::stages::A_SWEEP, root, || {
            pass::observe_records(passes, &batch.jobs, &batch.tasks, &batch.events);
        });
        self.stats.batches += 1;
        self.stats.machines += batch.machines.len() as u64;
        self.stats.jobs += batch.jobs.len() as u64;
        self.stats.tasks += batch.tasks.len() as u64;
        self.stats.events += batch.events.len() as u64;
        self.stats.samples += batch.samples;
        let held: usize = self.passes.iter().map(|p| p.accumulator_bytes()).sum();
        self.stats.peak_accumulator_bytes = self.stats.peak_accumulator_bytes.max(held as u64);
    }

    /// Records how many storage bytes fed the run (zero for in-memory
    /// sources like the fused pipeline). Pull-driven wrappers call this
    /// once, after the source is exhausted.
    pub fn set_bytes_read(&mut self, bytes: u64) {
        self.stats.bytes_read = bytes;
    }

    /// Batches observed so far — lets push-driven callers report
    /// progress without shadow bookkeeping.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// Finalizes every pass into the report. `system` and `horizon` come
    /// from the stream's header (a [`BatchSource`]'s accessors, or the
    /// simulator's own config on the fused path).
    pub fn finish(self, system: &str, horizon: u64) -> (CharacterizationReport, StreamStats) {
        let root = self.span.id();
        let ctx = PassContext {
            system: system.to_string(),
            horizon,
        };
        let workload = pass::finish_workload(self.passes, &ctx, root);
        (
            CharacterizationReport {
                system: ctx.system,
                workload,
                hostload: None,
            },
            self.stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_trace::io::write_trace;
    use cgc_trace::task::{TaskEvent, TaskEventKind};
    use cgc_trace::usage::{HostSeries, UsageSample};
    use cgc_trace::{Demand, Priority, Trace, TraceBuilder, UserId};
    use std::io::Cursor;

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new("stream-core", 7_200);
        let m0 = b.add_machine(0.5, 0.75, 1.0);
        for ji in 0..20u64 {
            let j = b.add_job(
                UserId((ji % 4) as u32),
                Priority::from_level((ji % 12) as u8 + 1),
                ji * 30,
            );
            b.set_job_usage(j, 5.0 * (ji + 1) as f64, 0.01);
            let t = b.add_task(j, Demand::new(0.02, 0.01));
            b.push_event(TaskEvent {
                time: ji * 30,
                task: t,
                machine: None,
                kind: TaskEventKind::Submit,
            });
            b.push_event(TaskEvent {
                time: ji * 30 + 2,
                task: t,
                machine: Some(m0),
                kind: TaskEventKind::Schedule,
            });
            let kind = if ji % 5 == 0 {
                TaskEventKind::Fail
            } else {
                TaskEventKind::Finish
            };
            b.push_event(TaskEvent {
                time: ji * 30 + 40,
                task: t,
                machine: Some(m0),
                kind,
            });
        }
        let mut series = HostSeries::new(m0, 0, 300);
        series.samples = vec![UsageSample::default(); 3];
        b.add_host_series(series);
        b.build().expect("legal event sequence")
    }

    #[test]
    fn exact_stream_matches_in_memory_workload() {
        let trace = sample_trace();
        let text = write_trace(&trace);
        let whole = crate::report::characterize(&trace);
        for batch_records in [1, 7, 1 << 20] {
            let (report, stats) = characterize_stream(
                Cursor::new(&text),
                &StreamOptions {
                    batch_records,
                    approx: false,
                },
            )
            .expect("well-formed trace");
            assert_eq!(report.system, whole.system);
            assert_eq!(report.workload, whole.workload);
            assert!(report.hostload.is_none());
            assert_eq!(stats.jobs, 20);
            assert_eq!(stats.samples, 3);
            assert!(stats.peak_accumulator_bytes > 0);
            assert_eq!(stats.bytes_read, text.len() as u64);
        }
    }

    /// The columnar streaming path is a drop-in for the text one: same
    /// report (bit-identical in exact mode), same stats, for every batch
    /// size — the two sources differ only in `bytes_read`, which counts
    /// container bytes instead of text bytes.
    #[test]
    fn columnar_stream_matches_text_stream() {
        let trace = sample_trace();
        let text = write_trace(&trace);
        let bytes = cgc_trace::write_trace_columnar(&trace);
        for batch_records in [1, 7, 1 << 20] {
            let opts = StreamOptions {
                batch_records,
                approx: false,
            };
            let (from_text, text_stats) =
                characterize_stream(Cursor::new(&text), &opts).expect("text streams");
            let (from_binary, binary_stats) =
                characterize_stream_columnar(&bytes, &opts).expect("container streams");
            assert_eq!(from_binary.system, from_text.system);
            assert_eq!(from_binary.workload, from_text.workload);
            assert!(from_binary.hostload.is_none());
            assert_eq!(binary_stats.bytes_read, bytes.len() as u64);
            let strip = |mut s: StreamStats| {
                s.bytes_read = 0;
                s.peak_accumulator_bytes = 0;
                s
            };
            assert_eq!(strip(binary_stats), strip(text_stats));
        }
    }

    /// A corrupt container fails the columnar stream up front with a
    /// typed integrity error — no pass ever observes salvage.
    #[test]
    fn columnar_stream_rejects_corruption_up_front() {
        let mut bytes = cgc_trace::write_trace_columnar(&sample_trace());
        let at = bytes.len() / 2;
        bytes[at] ^= 0x10;
        let err = characterize_stream_columnar(&bytes, &StreamOptions::default())
            .expect_err("corrupt container must be rejected");
        assert_eq!(err.kind, cgc_trace::ParseErrorKind::Integrity);
    }

    #[test]
    fn approx_stream_keeps_exact_counts_and_extrema() {
        let trace = sample_trace();
        let text = write_trace(&trace);
        let whole = crate::report::characterize(&trace);
        let (report, stats) = characterize_stream(
            Cursor::new(&text),
            &StreamOptions {
                batch_records: 4,
                approx: true,
            },
        )
        .expect("well-formed trace");
        assert!(stats.approx);
        let (a, b) = (
            report.workload.job_length.unwrap().summary,
            whole.workload.job_length.unwrap().summary,
        );
        assert_eq!(a.count, b.count);
        assert_eq!(a.min, b.min);
        assert_eq!(a.max, b.max);
        assert!((a.mean - b.mean).abs() < 1e-9);
    }

    #[test]
    fn parse_errors_propagate() {
        let text = "#trace sys 100\n#machines\nnot-a-machine\n";
        let err = characterize_stream(Cursor::new(text), &StreamOptions::default())
            .expect_err("malformed line must abort");
        assert_eq!(err.line, 3);
    }

    #[test]
    fn empty_input_yields_empty_report() {
        let (report, stats) =
            characterize_stream(Cursor::new(""), &StreamOptions::default()).unwrap();
        assert_eq!(stats.batches, 1);
        assert!(report.workload.job_length.is_none());
        assert_eq!(report.workload.priorities.total_jobs(), 0);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_panics() {
        let _ = characterize_stream(
            Cursor::new(""),
            &StreamOptions {
                batch_records: 0,
                approx: false,
            },
        );
    }
}
