//! One-step-ahead load predictors.
//!
//! All predictors share the same contract: given the history
//! `series[..t]`, produce an estimate of `series[t]`. They are all cheap
//! enough to run per machine per sample, the regime a cluster scheduler
//! operates in.

use cgc_stats::LevelQuantizer;
use serde::{Deserialize, Serialize};

/// The available predictor families.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PredictorKind {
    /// Tomorrow equals today: predict the last observation.
    LastValue,
    /// Mean of the last `window` observations.
    MovingAverage {
        /// History window in samples.
        window: usize,
    },
    /// Exponentially weighted mean with smoothing factor `alpha`.
    ExponentialSmoothing {
        /// Weight of the newest observation, in `(0, 1]`.
        alpha: f64,
    },
    /// Ordinary-least-squares line over the last `window` observations,
    /// extrapolated one step.
    LinearTrend {
        /// Fit window in samples.
        window: usize,
    },
    /// Auto-regressive model of the given order, fit by Yule–Walker on
    /// the full history seen so far.
    AutoRegressive {
        /// Number of lags.
        order: usize,
    },
    /// First-order Markov chain over quantized load levels; predicts the
    /// expected next-level midpoint. Mirrors the paper's observation that
    /// load dwells in discrete bands (Tables II/III).
    MarkovLevels {
        /// Number of uniform bands over `[0, 1]`.
        bands: usize,
    },
}

impl PredictorKind {
    /// Every kind with sensible defaults, for sweep experiments.
    pub fn all_default() -> Vec<PredictorKind> {
        vec![
            PredictorKind::LastValue,
            PredictorKind::MovingAverage { window: 12 },
            PredictorKind::ExponentialSmoothing { alpha: 0.3 },
            PredictorKind::LinearTrend { window: 12 },
            PredictorKind::AutoRegressive { order: 4 },
            PredictorKind::MarkovLevels { bands: 10 },
        ]
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            PredictorKind::LastValue => "last-value".into(),
            PredictorKind::MovingAverage { window } => format!("moving-avg({window})"),
            PredictorKind::ExponentialSmoothing { alpha } => format!("exp-smooth({alpha})"),
            PredictorKind::LinearTrend { window } => format!("linear({window})"),
            PredictorKind::AutoRegressive { order } => format!("ar({order})"),
            PredictorKind::MarkovLevels { bands } => format!("markov({bands})"),
        }
    }

    /// Instantiates a stateful predictor.
    pub fn build(&self) -> Predictor {
        Predictor { kind: *self }
    }
}

/// A stateful predictor instance (currently stateless across calls; the
/// struct exists so richer online state can be added without breaking the
/// API).
#[derive(Debug, Clone)]
pub struct Predictor {
    kind: PredictorKind,
}

impl Predictor {
    /// Predicts `series[history_len]` from `series[..history_len]`.
    ///
    /// With an empty history the prediction is 0 (an empty machine).
    pub fn predict(&self, history: &[f64]) -> f64 {
        let n = history.len();
        if n == 0 {
            return 0.0;
        }
        match self.kind {
            PredictorKind::LastValue => history[n - 1],
            PredictorKind::MovingAverage { window } => {
                let w = window.max(1).min(n);
                history[n - w..].iter().sum::<f64>() / w as f64
            }
            PredictorKind::ExponentialSmoothing { alpha } => {
                let a = alpha.clamp(1e-6, 1.0);
                let mut s = history[0];
                for &v in &history[1..] {
                    s = a * v + (1.0 - a) * s;
                }
                s
            }
            PredictorKind::LinearTrend { window } => {
                let w = window.max(2).min(n);
                let seg = &history[n - w..];
                linear_extrapolate(seg)
            }
            PredictorKind::AutoRegressive { order } => {
                let p = order.max(1);
                if n < p + 2 {
                    return history[n - 1];
                }
                ar_predict(history, p)
            }
            PredictorKind::MarkovLevels { bands } => markov_predict(history, bands.max(2)),
        }
    }
}

/// OLS fit over the segment (x = 0..w), extrapolated to x = w.
fn linear_extrapolate(seg: &[f64]) -> f64 {
    let w = seg.len() as f64;
    let mx = (w - 1.0) / 2.0;
    let my = seg.iter().sum::<f64>() / w;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (i, &y) in seg.iter().enumerate() {
        let dx = i as f64 - mx;
        sxy += dx * (y - my);
        sxx += dx * dx;
    }
    let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    my + slope * (w - mx)
}

/// Yule–Walker AR(p) one-step prediction.
fn ar_predict(history: &[f64], p: usize) -> f64 {
    let n = history.len();
    let mean = history.iter().sum::<f64>() / n as f64;
    // Autocovariances r_0..r_p.
    let mut r = vec![0.0; p + 1];
    for (k, rk) in r.iter_mut().enumerate() {
        let mut acc = 0.0;
        for i in 0..n - k {
            acc += (history[i] - mean) * (history[i + k] - mean);
        }
        *rk = acc / n as f64;
    }
    if r[0] <= 1e-12 {
        return history[n - 1];
    }
    // Solve the Toeplitz system via Levinson-Durbin.
    let phi = levinson_durbin(&r, p);
    let mut pred = mean;
    for (k, &coef) in phi.iter().enumerate() {
        pred += coef * (history[n - 1 - k] - mean);
    }
    pred
}

/// Levinson–Durbin recursion: AR coefficients from autocovariances.
fn levinson_durbin(r: &[f64], p: usize) -> Vec<f64> {
    let mut phi = vec![0.0; p];
    let mut prev = vec![0.0; p];
    let mut e = r[0];
    for k in 0..p {
        let mut acc = r[k + 1];
        for j in 0..k {
            acc -= prev[j] * r[k - j];
        }
        let kappa = if e.abs() < 1e-12 { 0.0 } else { acc / e };
        phi[..k].copy_from_slice(&prev[..k]);
        for j in 0..k {
            phi[j] = prev[j] - kappa * prev[k - 1 - j];
        }
        phi[k] = kappa;
        e *= 1.0 - kappa * kappa;
        prev[..=k].copy_from_slice(&phi[..=k]);
    }
    phi
}

/// First-order Markov chain over quantized levels: predicts the expected
/// next-band midpoint given the current band's empirical transitions.
fn markov_predict(history: &[f64], bands: usize) -> f64 {
    let quantizer = LevelQuantizer::Uniform { bins: bands };
    let levels = quantizer.quantize_series(history);
    let n = levels.len();
    let current = levels[n - 1];
    // Transition counts out of the current band.
    let mut counts = vec![0u32; bands];
    let mut total = 0u32;
    for w in levels.windows(2) {
        if w[0] == current {
            counts[w[1]] += 1;
            total += 1;
        }
    }
    let midpoint = |b: usize| (b as f64 + 0.5) / bands as f64;
    if total == 0 {
        return midpoint(current);
    }
    counts
        .iter()
        .enumerate()
        .map(|(b, &c)| midpoint(b) * c as f64 / total as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_value() {
        let p = PredictorKind::LastValue.build();
        assert_eq!(p.predict(&[0.1, 0.5, 0.9]), 0.9);
        assert_eq!(p.predict(&[]), 0.0);
    }

    #[test]
    fn moving_average() {
        let p = PredictorKind::MovingAverage { window: 2 }.build();
        assert!((p.predict(&[0.0, 0.4, 0.8]) - 0.6).abs() < 1e-12);
        // Window larger than history degrades to the full mean.
        let p = PredictorKind::MovingAverage { window: 10 }.build();
        assert!((p.predict(&[0.3, 0.6]) - 0.45).abs() < 1e-12);
    }

    #[test]
    fn exponential_smoothing_converges_to_constant() {
        let p = PredictorKind::ExponentialSmoothing { alpha: 0.5 }.build();
        let s = vec![0.7; 50];
        assert!((p.predict(&s) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn linear_trend_extrapolates_exactly() {
        let p = PredictorKind::LinearTrend { window: 5 }.build();
        let s: Vec<f64> = (0..10).map(|i| 0.1 * i as f64).collect();
        // Next point of the line 0.1*i at i=10 is 1.0.
        assert!((p.predict(&s) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ar_predicts_ar1_process_well() {
        // x_t = 0.9 x_{t-1} + small deterministic perturbation.
        let mut s = vec![1.0];
        for i in 1..300 {
            let noise = 0.01 * (((i * 37) % 11) as f64 - 5.0) / 5.0;
            let prev = s[i - 1];
            s.push(0.9 * prev + noise);
        }
        let p = PredictorKind::AutoRegressive { order: 1 }.build();
        let pred = p.predict(&s);
        let actual_next = 0.9 * s[s.len() - 1];
        assert!(
            (pred - actual_next).abs() < 0.05,
            "pred={pred} vs {actual_next}"
        );
    }

    #[test]
    fn ar_short_history_falls_back_to_last_value() {
        let p = PredictorKind::AutoRegressive { order: 8 }.build();
        assert_eq!(p.predict(&[0.2, 0.4]), 0.4);
    }

    #[test]
    fn markov_on_alternating_bands() {
        // Alternates between band 1 (0.15) and band 8 (0.85): from 0.15
        // the chain always moves to 0.85's band.
        let mut s = Vec::new();
        for i in 0..60 {
            s.push(if i % 2 == 0 { 0.15 } else { 0.85 });
        }
        // History ends on 0.85 (i=59), so prediction is band of 0.15.
        let p = PredictorKind::MarkovLevels { bands: 10 }.build();
        let pred = p.predict(&s);
        assert!((pred - 0.15).abs() < 0.01, "pred={pred}");
    }

    #[test]
    fn markov_unseen_state_predicts_own_band() {
        let p = PredictorKind::MarkovLevels { bands: 10 }.build();
        // Single observation: stay in band.
        let pred = p.predict(&[0.42]);
        assert!((pred - 0.45).abs() < 1e-9);
    }

    #[test]
    fn levinson_durbin_order_one() {
        // AR(1) with r1/r0 = 0.8.
        let phi = levinson_durbin(&[1.0, 0.8], 1);
        assert!((phi[0] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = PredictorKind::all_default()
            .iter()
            .map(|k| k.label())
            .collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Predictions stay finite and within a broad envelope of the
        /// history for every predictor.
        #[test]
        fn predictions_finite(series in prop::collection::vec(0.0f64..1.0, 1..120)) {
            for kind in PredictorKind::all_default() {
                let pred = kind.build().predict(&series);
                prop_assert!(pred.is_finite(), "{} gave {pred}", kind.label());
                prop_assert!((-1.0..=2.0).contains(&pred), "{} gave {pred}", kind.label());
            }
        }

        /// On constant series every predictor returns the constant.
        #[test]
        fn constant_fixed_point(v in 0.0f64..1.0, n in 12usize..80) {
            let series = vec![v; n];
            for kind in PredictorKind::all_default() {
                let pred = kind.build().predict(&series);
                let tol = if matches!(kind, PredictorKind::MarkovLevels { .. }) {
                    0.06 // band midpoint, not the exact value
                } else {
                    1e-6
                };
                prop_assert!((pred - v).abs() <= tol, "{}: {pred} vs {v}", kind.label());
            }
        }
    }
}
