//! Walk-forward prediction evaluation.
//!
//! One-step-ahead errors over a series, then aggregated across a fleet.
//! Scores are reported both absolutely (MSE/MAE in normalized-load units)
//! and relative to the last-value baseline, which is the honest yardstick
//! for load prediction: a sophisticated model only matters if it beats
//! "assume nothing changes".

use super::predictors::PredictorKind;
use cgc_trace::usage::UsageAttribute;
use cgc_trace::Trace;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Errors of one predictor on one or more series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictionError {
    /// Mean squared error.
    pub mse: f64,
    /// Mean absolute error.
    pub mae: f64,
    /// Number of predictions scored.
    pub predictions: usize,
}

impl PredictionError {
    /// Root-mean-square error.
    pub fn rmse(&self) -> f64 {
        self.mse.sqrt()
    }

    fn merge(self, other: PredictionError) -> PredictionError {
        let n = self.predictions + other.predictions;
        if n == 0 {
            return PredictionError {
                mse: 0.0,
                mae: 0.0,
                predictions: 0,
            };
        }
        let w1 = self.predictions as f64;
        let w2 = other.predictions as f64;
        PredictionError {
            mse: (self.mse * w1 + other.mse * w2) / (w1 + w2),
            mae: (self.mae * w1 + other.mae * w2) / (w1 + w2),
            predictions: n,
        }
    }
}

/// Walk-forward evaluation of one predictor on one series.
///
/// The first `warmup` samples are used as initial history only. Returns
/// zeroed errors if the series is shorter than `warmup + 2`.
pub fn evaluate(kind: PredictorKind, series: &[f64], warmup: usize) -> PredictionError {
    let predictor = kind.build();
    let start = warmup.max(1);
    if series.len() < start + 1 {
        return PredictionError {
            mse: 0.0,
            mae: 0.0,
            predictions: 0,
        };
    }
    let mut se = 0.0;
    let mut ae = 0.0;
    let mut n = 0usize;
    for t in start..series.len() {
        let pred = predictor.predict(&series[..t]);
        let err = pred - series[t];
        se += err * err;
        ae += err.abs();
        n += 1;
    }
    PredictionError {
        mse: se / n as f64,
        mae: ae / n as f64,
        predictions: n,
    }
}

/// Evaluates one predictor on every machine's relative load series and
/// pools the errors. `skip` leading samples are dropped (cold-start),
/// then `warmup` samples seed the history.
pub fn fleet_prediction_error(
    trace: &Trace,
    attr: UsageAttribute,
    kind: PredictorKind,
    skip: usize,
    warmup: usize,
) -> PredictionError {
    trace
        .host_series
        .par_iter()
        .filter(|s| s.len() > skip + warmup + 1)
        .map(|s| {
            let m = &trace.machines[s.machine.index()];
            let cap = match attr {
                UsageAttribute::Cpu => m.cpu_capacity,
                UsageAttribute::MemoryUsed | UsageAttribute::MemoryAssigned => m.memory_capacity,
                UsageAttribute::PageCache => m.page_cache_capacity,
            };
            let rel: Vec<f64> = s.attribute(attr, None)[skip..]
                .iter()
                .map(|v| v / cap)
                .collect();
            evaluate(kind, &rel, warmup)
        })
        .reduce(
            || PredictionError {
                mse: 0.0,
                mae: 0.0,
                predictions: 0,
            },
            PredictionError::merge,
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_trace::usage::{ClassSplit, HostSeries, UsageSample};
    use cgc_trace::TraceBuilder;

    #[test]
    fn perfect_prediction_on_constant() {
        let series = vec![0.5; 100];
        let e = evaluate(PredictorKind::LastValue, &series, 10);
        assert_eq!(e.mse, 0.0);
        assert_eq!(e.predictions, 90);
    }

    #[test]
    fn last_value_error_on_alternation() {
        // 0, 1, 0, 1 ... : last-value is always exactly 1 off.
        let series: Vec<f64> = (0..50).map(|i| (i % 2) as f64).collect();
        let e = evaluate(PredictorKind::LastValue, &series, 2);
        assert!((e.mse - 1.0).abs() < 1e-12);
        assert!((e.mae - 1.0).abs() < 1e-12);
        // The Markov predictor learns the alternation.
        let m = evaluate(PredictorKind::MarkovLevels { bands: 4 }, &series, 10);
        assert!(m.mse < 0.05, "markov mse={}", m.mse);
    }

    #[test]
    fn short_series_scores_nothing() {
        let e = evaluate(PredictorKind::LastValue, &[0.1], 5);
        assert_eq!(e.predictions, 0);
    }

    #[test]
    fn merge_weights_by_count() {
        let a = PredictionError {
            mse: 1.0,
            mae: 1.0,
            predictions: 1,
        };
        let b = PredictionError {
            mse: 0.0,
            mae: 0.0,
            predictions: 3,
        };
        let m = a.merge(b);
        assert!((m.mse - 0.25).abs() < 1e-12);
        assert_eq!(m.predictions, 4);
    }

    #[test]
    fn rmse_is_sqrt_mse() {
        let e = PredictionError {
            mse: 0.04,
            mae: 0.1,
            predictions: 10,
        };
        assert!((e.rmse() - 0.2).abs() < 1e-12);
    }

    fn trace_with_cpu(series: &[f64]) -> Trace {
        let mut b = TraceBuilder::new("t", series.len() as u64 * 300);
        let m = b.add_machine(0.5, 0.5, 1.0);
        let mut s = HostSeries::new(m, 0, 300);
        for &v in series {
            s.samples.push(UsageSample {
                cpu: ClassSplit {
                    low: v,
                    middle: 0.0,
                    high: 0.0,
                },
                ..UsageSample::default()
            });
        }
        b.add_host_series(s);
        b.build().unwrap()
    }

    #[test]
    fn fleet_error_normalizes_by_capacity() {
        // Constant absolute load 0.25 on a 0.5-capacity machine: the
        // relative series is constant 0.5 and last-value is perfect.
        let trace = trace_with_cpu(&vec![0.25; 60]);
        let e = fleet_prediction_error(&trace, UsageAttribute::Cpu, PredictorKind::LastValue, 5, 5);
        assert_eq!(e.mse, 0.0);
        assert!(e.predictions > 0);
    }

    #[test]
    fn fleet_error_empty_trace() {
        let trace = TraceBuilder::new("t", 100).build().unwrap();
        let e = fleet_prediction_error(&trace, UsageAttribute::Cpu, PredictorKind::LastValue, 0, 5);
        assert_eq!(e.predictions, 0);
    }

    #[test]
    fn smoother_series_is_easier() {
        let smooth: Vec<f64> = (0..300)
            .map(|i| 0.4 + 0.1 * (i as f64 / 40.0).sin())
            .collect();
        let noisy: Vec<f64> = (0..300)
            .map(|i| 0.4 + 0.35 * (((i * 2654435761usize) % 97) as f64 / 97.0 - 0.5))
            .collect();
        for kind in PredictorKind::all_default() {
            let es = evaluate(kind, &smooth, 30);
            let en = evaluate(kind, &noisy, 30);
            assert!(
                es.mse < en.mse,
                "{}: smooth {} !< noisy {}",
                kind.label(),
                es.mse,
                en.mse
            );
        }
    }
}
