//! Host-load prediction (the paper's Section VI future work).
//!
//! The paper closes with: *"In the future, we will try to exploit the
//! best-fit load prediction method based on our characterization work."*
//! This module supplies that toolkit: a family of one-step-ahead
//! predictors ([`predictors`]) and a walk-forward evaluation harness
//! ([`eval`]) that scores them per machine and across a fleet.
//!
//! The characterization's punchline carries straight over: grid host load
//! (smooth, strongly autocorrelated) is easy to predict — even last-value
//! is nearly perfect — while cloud host load's minute-scale churn defeats
//! short-window predictors, exactly as the 20× noise gap suggests.

pub mod eval;
pub mod predictors;

pub use eval::{evaluate, fleet_prediction_error, PredictionError};
pub use predictors::{Predictor, PredictorKind};
