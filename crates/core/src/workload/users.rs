//! Per-user workload analysis.
//!
//! The trace attributes every job to a user, and cloud workload studies
//! consistently find extreme user skew: a handful of power users (or
//! service accounts) submit most of the jobs. The Gini coefficient and
//! top-k shares quantify that skew; the submission-stability contrast of
//! Table I partly reflects it (many independent users smooth the cloud's
//! aggregate arrival stream).

use cgc_stats::{gini, Summary};
use cgc_trace::Trace;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-user activity statistics for one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserActivity {
    /// Number of distinct users that submitted at least one job.
    pub users: usize,
    /// Summary of jobs-per-user.
    pub jobs_per_user: Summary,
    /// Gini coefficient of jobs-per-user (0 = all users equal).
    pub gini: f64,
    /// Fraction of jobs submitted by the most active 10% of users.
    pub top_decile_share: f64,
    /// Fraction of jobs submitted by the single most active user.
    pub top_user_share: f64,
}

/// Computes user-activity statistics; `None` for traces without jobs.
pub fn user_activity(trace: &Trace) -> Option<UserActivity> {
    if trace.jobs.is_empty() {
        return None;
    }
    let mut counts: HashMap<u32, u64> = HashMap::new();
    for job in &trace.jobs {
        *counts.entry(job.user.0).or_insert(0) += 1;
    }
    let mut per_user: Vec<f64> = counts.values().map(|&c| c as f64).collect();
    per_user.sort_by(|a, b| b.partial_cmp(a).expect("counts are finite"));
    let total: f64 = per_user.iter().sum();
    let decile = per_user.len().div_ceil(10);
    let top_decile: f64 = per_user[..decile].iter().sum();
    Some(UserActivity {
        users: per_user.len(),
        jobs_per_user: Summary::of(&per_user),
        gini: gini(&per_user),
        top_decile_share: top_decile / total,
        top_user_share: per_user[0] / total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_trace::{Priority, TraceBuilder, UserId};

    fn trace_with_users(user_jobs: &[(u32, usize)]) -> Trace {
        let mut b = TraceBuilder::new("t", 1_000);
        for &(user, jobs) in user_jobs {
            for i in 0..jobs {
                b.add_job(UserId(user), Priority::from_level(1), i as u64);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn equal_users_have_zero_gini() {
        let trace = trace_with_users(&[(0, 5), (1, 5), (2, 5), (3, 5)]);
        let a = user_activity(&trace).unwrap();
        assert_eq!(a.users, 4);
        assert!(a.gini.abs() < 1e-12);
        assert!((a.top_user_share - 0.25).abs() < 1e-12);
    }

    #[test]
    fn skewed_users() {
        let trace = trace_with_users(&[(0, 90), (1, 5), (2, 3), (3, 2)]);
        let a = user_activity(&trace).unwrap();
        assert!(a.gini > 0.5, "gini={}", a.gini);
        assert!((a.top_user_share - 0.9).abs() < 1e-12);
        // Top decile of 4 users = 1 user = the dominant one.
        assert!((a.top_decile_share - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let trace = TraceBuilder::new("t", 10).build().unwrap();
        assert!(user_activity(&trace).is_none());
    }

    #[test]
    fn jobs_per_user_summary() {
        let trace = trace_with_users(&[(0, 10), (1, 2)]);
        let a = user_activity(&trace).unwrap();
        assert_eq!(a.jobs_per_user.max, 10.0);
        assert_eq!(a.jobs_per_user.min, 2.0);
        assert_eq!(a.jobs_per_user.mean, 6.0);
    }
}
