//! Resubmission and completion-mix analysis (paper §IV.B.1, Fig. 1).
//!
//! The paper's headline failure statistic: 59.2% of the Google trace's
//! 44 million completion events are abnormal — failures make up ~50% and
//! user kills ~30.7% of the abnormal ones — and the counts are inflated
//! by crash loops, tasks resubmitted again and again after failing.
//! Grid systems sit at the other extreme, with tasks almost always
//! finishing. This analyzer reports both views: the per-event completion
//! mix (overall and per priority class) and the per-task resubmission
//! behaviour (attempts CDF, crash-looper count, inter-attempt waits).

use crate::pass::{AnalysisPass, PassContext, PassOutput, ResolvedValues, ValueAcc};
use cgc_stats::Ecdf;
use cgc_trace::trace::CompletionCounts;
use cgc_trace::{TaskEventKind, Trace};
use serde::{Deserialize, Serialize};

/// A task with at least this many scheduling attempts is counted as a
/// crash-looper (a deterministic failure being retried).
pub const CRASH_LOOP_ATTEMPTS: u32 = 10;

/// Completion-event mix and per-task resubmission statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResubmissionAnalysis {
    /// System label the statistics came from.
    pub system: String,
    /// Completion events by kind, trace-wide.
    pub completions: CompletionCounts,
    /// Share of completion events that are abnormal (paper: 0.592).
    pub abnormal_fraction: f64,
    /// Failures as a share of abnormal events (paper: ~0.50).
    pub fail_share_of_abnormal: f64,
    /// Kills as a share of abnormal events (paper: ~0.307).
    pub kill_share_of_abnormal: f64,
    /// Abnormal share per priority class `[low, middle, high]`; `NaN`-free
    /// (0 where a class saw no completions).
    pub abnormal_share_by_class: [f64; 3],
    /// Largest number of attempts any task made.
    pub max_attempts: u32,
    /// Mean attempts over tasks that ever ran.
    pub mean_attempts: f64,
    /// Tasks with at least [`CRASH_LOOP_ATTEMPTS`] attempts.
    pub crash_looper_tasks: u64,
    /// Mean per-task inter-attempt gap in seconds, over resubmitted tasks
    /// (0 when nothing was resubmitted); reflects scheduler backoff.
    pub mean_resubmit_gap: f64,
    /// CDF of attempts per task (tasks that ever ran).
    #[serde(skip)]
    attempts_cdf: Option<Ecdf>,
}

impl ResubmissionAnalysis {
    /// The attempts-per-task ECDF (present unless deserialized).
    pub fn attempts_cdf(&self) -> Option<&Ecdf> {
        self.attempts_cdf.as_ref()
    }

    /// Fraction of tasks needing more than one attempt.
    pub fn resubmitted_fraction(&self) -> f64 {
        self.attempts_cdf
            .as_ref()
            .map_or(0.0, |cdf| 1.0 - cdf.eval(1.0))
    }
}

/// Analyzes resubmission behaviour; `None` if no task ever ran.
pub fn resubmission_analysis(trace: &Trace) -> Option<ResubmissionAnalysis> {
    let attempts: Vec<f64> = trace
        .tasks
        .iter()
        .filter(|t| t.ever_ran())
        .map(|t| f64::from(t.attempts))
        .collect();
    if attempts.is_empty() {
        return None;
    }

    // Per-class completion-event tallies: (total, abnormal).
    let mut by_class = [(0u64, 0u64); 3];
    for e in &trace.events {
        if !e.kind.is_completion() {
            continue;
        }
        // Tolerate partial traces (lenient parses): an event whose task
        // record was skipped simply drops out of the per-class view.
        let Some(task) = trace.tasks.get(e.task.index()) else {
            continue;
        };
        let slot = &mut by_class[task.priority.class().index()];
        slot.0 += 1;
        if e.kind.is_abnormal_completion() {
            slot.1 += 1;
        }
    }
    let abnormal_share_by_class = by_class.map(|(total, abnormal)| {
        if total == 0 {
            0.0
        } else {
            abnormal as f64 / total as f64
        }
    });

    let completions = trace.completion_counts();
    let abnormal = completions.abnormal();
    let kill_share_of_abnormal = if abnormal == 0 {
        0.0
    } else {
        completions.kill as f64 / abnormal as f64
    };

    let gaps: Vec<f64> = trace
        .tasks
        .iter()
        .filter_map(|t| t.mean_resubmit_gap())
        .collect();
    let mean_resubmit_gap = if gaps.is_empty() {
        0.0
    } else {
        gaps.iter().sum::<f64>() / gaps.len() as f64
    };

    let cdf = Ecdf::new(attempts);
    Some(ResubmissionAnalysis {
        system: trace.system.clone(),
        completions,
        abnormal_fraction: completions.abnormal_fraction(),
        fail_share_of_abnormal: completions.fail_share_of_abnormal(),
        kill_share_of_abnormal,
        abnormal_share_by_class,
        max_attempts: cdf.max() as u32,
        mean_attempts: cdf.mean(),
        crash_looper_tasks: trace
            .tasks
            .iter()
            .filter(|t| t.attempts >= CRASH_LOOP_ATTEMPTS)
            .count() as u64,
        mean_resubmit_gap,
        attempts_cdf: Some(cdf),
    })
}

/// Accumulating [`AnalysisPass`] form of [`resubmission_analysis`].
///
/// Besides the attempts accumulator it keeps one byte per task (the
/// priority class, so completion events — which only carry a task id —
/// can be attributed to a class). Ids are dense and events always follow
/// their task's declaration, so the lookup also works batch-by-batch.
#[derive(Debug)]
pub(crate) struct ResubmissionPass {
    attempts: ValueAcc,
    /// Priority-class index of task `i`, pushed in task-id order.
    classes: Vec<u8>,
    /// Per-class completion tallies: `(total, abnormal)`.
    by_class: [(u64, u64); 3],
    completions: CompletionCounts,
    gap_sum: f64,
    gap_count: u64,
    crash_loopers: u64,
}

impl ResubmissionPass {
    pub(crate) fn new(approx: bool) -> Self {
        ResubmissionPass {
            attempts: ValueAcc::new(approx),
            classes: Vec::new(),
            by_class: [(0, 0); 3],
            completions: CompletionCounts::default(),
            gap_sum: 0.0,
            gap_count: 0,
            crash_loopers: 0,
        }
    }
}

impl AnalysisPass for ResubmissionPass {
    fn stage(&self) -> &'static str {
        cgc_obs::stages::A_RESUBMISSION
    }

    fn observe_task(&mut self, task: &cgc_trace::TaskRecord) {
        if task.ever_ran() {
            self.attempts.push(f64::from(task.attempts));
        }
        self.classes.push(task.priority.class().index() as u8);
        if let Some(gap) = task.mean_resubmit_gap() {
            self.gap_sum += gap;
            self.gap_count += 1;
        }
        if task.attempts >= CRASH_LOOP_ATTEMPTS {
            self.crash_loopers += 1;
        }
    }

    fn observe_event(&mut self, event: &cgc_trace::TaskEvent) {
        match event.kind {
            TaskEventKind::Finish => self.completions.finish += 1,
            TaskEventKind::Evict => self.completions.evict += 1,
            TaskEventKind::Fail => self.completions.fail += 1,
            TaskEventKind::Kill => self.completions.kill += 1,
            TaskEventKind::Lost => self.completions.lost += 1,
            _ => {}
        }
        if event.kind.is_completion() {
            // Tolerate partial traces (lenient parses): an event whose
            // task record was skipped drops out of the per-class view.
            if let Some(&class) = self.classes.get(event.task.index()) {
                let slot = &mut self.by_class[class as usize];
                slot.0 += 1;
                if event.kind.is_abnormal_completion() {
                    slot.1 += 1;
                }
            }
        }
    }

    fn accumulator_bytes(&self) -> usize {
        self.attempts.bytes() + self.classes.len()
    }

    fn finish(self: Box<Self>, ctx: &PassContext) -> PassOutput {
        let (cdf, max_attempts, mean_attempts) = match self.attempts.resolve() {
            ResolvedValues::Exact(attempts) => {
                if attempts.is_empty() {
                    return PassOutput::Resubmission(None);
                }
                let cdf = Ecdf::new(attempts);
                let max = cdf.max() as u32;
                let mean = cdf.mean();
                (cdf, max, mean)
            }
            ResolvedValues::Approx { moments, sample } => {
                if moments.count() == 0 {
                    return PassOutput::Resubmission(None);
                }
                // Max and mean come from the exact moments; only the CDF
                // shape is sample-based.
                let s = moments.summary();
                (Ecdf::new(sample), s.max as u32, s.mean)
            }
        };
        let abnormal_share_by_class = self.by_class.map(|(total, abnormal)| {
            if total == 0 {
                0.0
            } else {
                abnormal as f64 / total as f64
            }
        });
        let completions = self.completions;
        let abnormal = completions.abnormal();
        let kill_share_of_abnormal = if abnormal == 0 {
            0.0
        } else {
            completions.kill as f64 / abnormal as f64
        };
        let mean_resubmit_gap = if self.gap_count == 0 {
            0.0
        } else {
            self.gap_sum / self.gap_count as f64
        };
        PassOutput::Resubmission(Some(ResubmissionAnalysis {
            system: ctx.system.clone(),
            completions,
            abnormal_fraction: completions.abnormal_fraction(),
            fail_share_of_abnormal: completions.fail_share_of_abnormal(),
            kill_share_of_abnormal,
            abnormal_share_by_class,
            max_attempts,
            mean_attempts,
            crash_looper_tasks: self.crash_loopers,
            mean_resubmit_gap,
            attempts_cdf: Some(cdf),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_trace::task::{TaskEvent, TaskEventKind};
    use cgc_trace::{Demand, Priority, TraceBuilder, UserId};

    /// One machine; each entry is (priority level, number of fail-retry
    /// cycles before finishing).
    fn trace_with(specs: &[(u8, u32)]) -> Trace {
        let mut b = TraceBuilder::new("t", 1_000_000);
        let m = b.add_machine(1.0, 1.0, 1.0);
        let mut clock = 0u64;
        for &(level, fail_cycles) in specs {
            let j = b.add_job(UserId(0), Priority::from_level(level), clock);
            let t = b.add_task(j, Demand::new(0.01, 0.01));
            for cycle in 0..=fail_cycles {
                b.push_event(TaskEvent {
                    time: clock,
                    task: t,
                    machine: None,
                    kind: TaskEventKind::Submit,
                });
                b.push_event(TaskEvent {
                    time: clock + 2,
                    task: t,
                    machine: Some(m),
                    kind: TaskEventKind::Schedule,
                });
                let kind = if cycle == fail_cycles {
                    TaskEventKind::Finish
                } else {
                    TaskEventKind::Fail
                };
                b.push_event(TaskEvent {
                    time: clock + 10,
                    task: t,
                    machine: Some(m),
                    kind,
                });
                clock += 30; // 20 s between death and next submit+schedule
            }
            clock += 100;
        }
        b.build().unwrap()
    }

    #[test]
    fn attempt_statistics() {
        let trace = trace_with(&[(1, 0), (1, 2), (5, 11)]);
        let a = resubmission_analysis(&trace).unwrap();
        assert_eq!(a.max_attempts, 12);
        assert_eq!(a.crash_looper_tasks, 1);
        assert!((a.mean_attempts - (1.0 + 3.0 + 12.0) / 3.0).abs() < 1e-12);
        let cdf = a.attempts_cdf().unwrap();
        assert!((cdf.eval(1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((a.resubmitted_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn completion_mix_counts_all_attempts() {
        let trace = trace_with(&[(1, 0), (1, 2)]);
        let a = resubmission_analysis(&trace).unwrap();
        // 2 finishes + 2 fails = 4 completion events, half abnormal.
        assert_eq!(a.completions.total(), 4);
        assert!((a.abnormal_fraction - 0.5).abs() < 1e-12);
        assert!((a.fail_share_of_abnormal - 1.0).abs() < 1e-12);
        assert_eq!(a.kill_share_of_abnormal, 0.0);
    }

    #[test]
    fn per_class_shares() {
        // Low priority fails twice then finishes; high priority finishes
        // outright: abnormal share 2/3 for low, 0 for high.
        let trace = trace_with(&[(1, 2), (10, 0)]);
        let a = resubmission_analysis(&trace).unwrap();
        assert!((a.abnormal_share_by_class[0] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.abnormal_share_by_class[1], 0.0);
        assert_eq!(a.abnormal_share_by_class[2], 0.0);
    }

    #[test]
    fn resubmit_gaps_are_averaged() {
        let trace = trace_with(&[(1, 1)]);
        let a = resubmission_analysis(&trace).unwrap();
        // Death at t+10, next submit at t+30, schedule at t+32: gap 22 s.
        assert!((a.mean_resubmit_gap - 22.0).abs() < 1e-12);
    }

    #[test]
    fn none_when_nothing_ran() {
        let mut b = TraceBuilder::new("t", 100);
        b.add_job(UserId(0), Priority::from_level(1), 0);
        let trace = b.build().unwrap();
        assert!(resubmission_analysis(&trace).is_none());
    }
}
