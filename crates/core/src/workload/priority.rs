//! Priority histograms (paper Fig. 2).
//!
//! Counts jobs and tasks per priority level and per priority class. The
//! paper's observation — most work sits at low priorities, so a "full"
//! machine can still be idle from a high-priority task's point of view —
//! drives all the per-class host-load views later.

use crate::pass::{AnalysisPass, PassContext, PassOutput};
use cgc_trace::priority::NUM_PRIORITIES;
use cgc_trace::{PriorityClass, Trace};
use serde::{Deserialize, Serialize};

/// Jobs and tasks per priority level (index 0 = priority 1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PriorityHistogram {
    /// Number of jobs at each of the 12 priorities.
    pub jobs: [u64; NUM_PRIORITIES],
    /// Number of tasks at each of the 12 priorities.
    pub tasks: [u64; NUM_PRIORITIES],
}

impl PriorityHistogram {
    /// Totals per priority class: `(jobs, tasks)`, each `[low, mid, high]`.
    pub fn class_totals(&self) -> ([u64; 3], [u64; 3]) {
        let mut jobs = [0u64; 3];
        let mut tasks = [0u64; 3];
        for class in PriorityClass::ALL {
            for level in class.levels() {
                jobs[class.index()] += self.jobs[(level - 1) as usize];
                tasks[class.index()] += self.tasks[(level - 1) as usize];
            }
        }
        (jobs, tasks)
    }

    /// Total number of jobs.
    pub fn total_jobs(&self) -> u64 {
        self.jobs.iter().sum()
    }

    /// Total number of tasks.
    pub fn total_tasks(&self) -> u64 {
        self.tasks.iter().sum()
    }

    /// Fraction of jobs in the low-priority class.
    pub fn low_priority_job_share(&self) -> f64 {
        let (jobs, _) = self.class_totals();
        let total = self.total_jobs();
        if total == 0 {
            0.0
        } else {
            jobs[0] as f64 / total as f64
        }
    }
}

/// Computes the Fig. 2 histograms from a trace.
pub fn priority_histogram(trace: &Trace) -> PriorityHistogram {
    let mut pass = PriorityPass::default();
    for j in &trace.jobs {
        pass.observe_job(j);
    }
    for t in &trace.tasks {
        pass.observe_task(t);
    }
    pass.histogram
}

/// Accumulating [`AnalysisPass`] form of [`priority_histogram`]. The
/// histogram is fixed-size, so this pass streams in O(1) memory with no
/// approximation.
#[derive(Debug)]
pub(crate) struct PriorityPass {
    histogram: PriorityHistogram,
}

impl Default for PriorityPass {
    fn default() -> Self {
        PriorityPass {
            histogram: PriorityHistogram {
                jobs: [0; NUM_PRIORITIES],
                tasks: [0; NUM_PRIORITIES],
            },
        }
    }
}

impl AnalysisPass for PriorityPass {
    fn stage(&self) -> &'static str {
        cgc_obs::stages::A_PRIORITIES
    }

    fn observe_job(&mut self, job: &cgc_trace::JobRecord) {
        self.histogram.jobs[job.priority.index()] += 1;
    }

    fn observe_task(&mut self, task: &cgc_trace::TaskRecord) {
        self.histogram.tasks[task.priority.index()] += 1;
    }

    fn accumulator_bytes(&self) -> usize {
        std::mem::size_of::<PriorityHistogram>()
    }

    fn finish(self: Box<Self>, _ctx: &PassContext) -> PassOutput {
        PassOutput::Priorities(self.histogram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_trace::{Demand, Priority, TraceBuilder, UserId};

    fn trace_with(priorities: &[(u8, usize)]) -> Trace {
        let mut b = TraceBuilder::new("t", 1_000);
        for &(level, tasks) in priorities {
            let j = b.add_job(UserId(0), Priority::from_level(level), 0);
            for _ in 0..tasks {
                b.add_task(j, Demand::new(0.01, 0.01));
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn counts_jobs_and_tasks() {
        let trace = trace_with(&[(1, 2), (1, 3), (5, 1), (12, 4)]);
        let h = priority_histogram(&trace);
        assert_eq!(h.jobs[0], 2);
        assert_eq!(h.tasks[0], 5);
        assert_eq!(h.jobs[4], 1);
        assert_eq!(h.jobs[11], 1);
        assert_eq!(h.tasks[11], 4);
        assert_eq!(h.total_jobs(), 4);
        assert_eq!(h.total_tasks(), 10);
    }

    #[test]
    fn class_totals_partition() {
        let trace = trace_with(&[(1, 1), (4, 1), (5, 1), (8, 1), (9, 1), (12, 1)]);
        let h = priority_histogram(&trace);
        let (jobs, tasks) = h.class_totals();
        assert_eq!(jobs, [2, 2, 2]);
        assert_eq!(tasks, [2, 2, 2]);
    }

    #[test]
    fn low_priority_share() {
        let trace = trace_with(&[(1, 1), (2, 1), (3, 1), (10, 1)]);
        let h = priority_histogram(&trace);
        assert!((h.low_priority_job_share() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let trace = TraceBuilder::new("t", 10).build().unwrap();
        let h = priority_histogram(&trace);
        assert_eq!(h.total_jobs(), 0);
        assert_eq!(h.low_priority_job_share(), 0.0);
    }
}
