//! Per-job resource utilization (paper Fig. 6).
//!
//! CPU usage follows the paper's Formula 4 — cumulative CPU time over all
//! processors divided by wall-clock time — so a sequential Google job scores
//! below 1 while a width-4 grid job scores ≈ 4. Memory is the job's mean
//! held memory; because the Google trace only publishes normalized values,
//! Fig. 6(b) de-normalizes under assumed 32 GB / 64 GB machine capacities,
//! which [`job_memory_mb`] reproduces via its `max_capacity_gb` parameter.

use cgc_stats::Ecdf;
use cgc_trace::Trace;

/// ECDF of per-job CPU usage in processor units; `None` if no job finished.
pub fn job_cpu_usage(trace: &Trace) -> Option<Ecdf> {
    let usages: Vec<f64> = trace.jobs.iter().filter_map(|j| j.cpu_usage()).collect();
    if usages.is_empty() {
        None
    } else {
        Some(Ecdf::new(usages))
    }
}

/// ECDF of per-job mean memory in MB, de-normalized under the given
/// maximum machine capacity in GB; `None` if the trace has no jobs.
pub fn job_memory_mb(trace: &Trace, max_capacity_gb: f64) -> Option<Ecdf> {
    assert!(max_capacity_gb > 0.0, "capacity must be positive");
    if trace.jobs.is_empty() {
        return None;
    }
    let values: Vec<f64> = trace
        .jobs
        .iter()
        .map(|j| j.mean_memory * max_capacity_gb * 1_024.0)
        .collect();
    Some(Ecdf::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_trace::task::{TaskEvent, TaskEventKind};
    use cgc_trace::{Demand, JobId, MachineId, Priority, TraceBuilder, UserId};

    /// One finished job with the given cpu-seconds over a 100 s wallclock,
    /// and the given normalized mean memory.
    fn trace_with_jobs(specs: &[(f64, f64)]) -> Trace {
        let mut b = TraceBuilder::new("t", 1_000_000);
        b.add_machine(1.0, 1.0, 1.0);
        for (i, &(cpu_seconds, mem)) in specs.iter().enumerate() {
            let submit = i as u64 * 200;
            let j = b.add_job(UserId(0), Priority::from_level(2), submit);
            let t = b.add_task(j, Demand::new(0.1, 0.1));
            b.set_job_usage(JobId::from(i), cpu_seconds, mem);
            b.push_event(TaskEvent {
                time: submit,
                task: t,
                machine: None,
                kind: TaskEventKind::Submit,
            });
            b.push_event(TaskEvent {
                time: submit,
                task: t,
                machine: Some(MachineId(0)),
                kind: TaskEventKind::Schedule,
            });
            b.push_event(TaskEvent {
                time: submit + 100,
                task: t,
                machine: Some(MachineId(0)),
                kind: TaskEventKind::Finish,
            });
        }
        b.build().unwrap()
    }

    #[test]
    fn cpu_usage_in_processor_units() {
        // 100 s wallclock at 200 core-seconds = 2 processors.
        let trace = trace_with_jobs(&[(200.0, 0.0), (50.0, 0.0)]);
        let e = job_cpu_usage(&trace).unwrap();
        assert_eq!(e.len(), 2);
        assert_eq!(e.max(), 2.0);
        assert_eq!(e.min(), 0.5);
    }

    #[test]
    fn memory_denormalization() {
        // mean_memory 0.01 at 32 GB => 327.68 MB; at 64 GB => 655.36 MB.
        let trace = trace_with_jobs(&[(0.0, 0.01)]);
        let at32 = job_memory_mb(&trace, 32.0).unwrap();
        let at64 = job_memory_mb(&trace, 64.0).unwrap();
        assert!((at32.max() - 327.68).abs() < 1e-9);
        assert!((at64.max() - 655.36).abs() < 1e-9);
    }

    #[test]
    fn empty_traces_yield_none() {
        let trace = TraceBuilder::new("t", 10).build().unwrap();
        assert!(job_cpu_usage(&trace).is_none());
        assert!(job_memory_mb(&trace, 32.0).is_none());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let trace = trace_with_jobs(&[(1.0, 0.1)]);
        let _ = job_memory_mb(&trace, 0.0);
    }
}
