//! Per-job resource utilization (paper Fig. 6).
//!
//! CPU usage follows the paper's Formula 4 — cumulative CPU time over all
//! processors divided by wall-clock time — so a sequential Google job scores
//! below 1 while a width-4 grid job scores ≈ 4. Memory is the job's mean
//! held memory; because the Google trace only publishes normalized values,
//! Fig. 6(b) de-normalizes under assumed 32 GB / 64 GB machine capacities,
//! which [`job_memory_mb`] reproduces via its `max_capacity_gb` parameter.

use crate::pass::{AnalysisPass, PassContext, PassOutput, ResolvedValues, ValueAcc};
use cgc_stats::{Ecdf, Summary};
use cgc_trace::Trace;

/// ECDF of per-job CPU usage in processor units; `None` if no job finished.
pub fn job_cpu_usage(trace: &Trace) -> Option<Ecdf> {
    let usages: Vec<f64> = trace.jobs.iter().filter_map(|j| j.cpu_usage()).collect();
    if usages.is_empty() {
        None
    } else {
        Some(Ecdf::new(usages))
    }
}

/// ECDF of per-job mean memory in MB, de-normalized under the given
/// maximum machine capacity in GB; `None` if the trace has no jobs.
pub fn job_memory_mb(trace: &Trace, max_capacity_gb: f64) -> Option<Ecdf> {
    assert!(max_capacity_gb > 0.0, "capacity must be positive");
    if trace.jobs.is_empty() {
        return None;
    }
    let values: Vec<f64> = trace
        .jobs
        .iter()
        .map(|j| j.mean_memory * max_capacity_gb * 1_024.0)
        .collect();
    Some(Ecdf::new(values))
}

/// The report's scalar view of either utilization ECDF: the summary of
/// the sorted sample (so this matches `Summary::of(ecdf.values())` from
/// the pre-pass report assembly bit for bit). `None` for no values.
fn ecdf_summary(values: Vec<f64>) -> Option<Summary> {
    if values.is_empty() {
        return None;
    }
    let ecdf = Ecdf::new(values);
    Some(Summary::of(ecdf.values()))
}

fn finish_summary(acc: ValueAcc) -> Option<Summary> {
    match acc.resolve() {
        ResolvedValues::Exact(values) => ecdf_summary(values),
        ResolvedValues::Approx { moments, sample } => {
            ecdf_summary(sample).map(|s| crate::pass::approx_summary(&s, &moments))
        }
    }
}

/// Accumulating [`AnalysisPass`] form of the Fig. 6(a) summary
/// (`job_cpu_usage` reduced to a [`Summary`]).
#[derive(Debug)]
pub(crate) struct CpuUsagePass {
    usages: ValueAcc,
}

impl CpuUsagePass {
    pub(crate) fn new(approx: bool) -> Self {
        CpuUsagePass {
            usages: ValueAcc::new(approx),
        }
    }
}

impl AnalysisPass for CpuUsagePass {
    fn stage(&self) -> &'static str {
        cgc_obs::stages::A_CPU_USAGE
    }

    fn observe_job(&mut self, job: &cgc_trace::JobRecord) {
        if let Some(u) = job.cpu_usage() {
            self.usages.push(u);
        }
    }

    fn accumulator_bytes(&self) -> usize {
        self.usages.bytes()
    }

    fn finish(self: Box<Self>, _ctx: &PassContext) -> PassOutput {
        PassOutput::CpuUsage(finish_summary(self.usages))
    }
}

/// Accumulating [`AnalysisPass`] form of the Fig. 6(b) summary
/// (`job_memory_mb` at the report's 32 GB reference, reduced to a
/// [`Summary`]).
#[derive(Debug)]
pub(crate) struct MemoryPass {
    max_capacity_gb: f64,
    values: ValueAcc,
}

impl MemoryPass {
    pub(crate) fn new(max_capacity_gb: f64, approx: bool) -> Self {
        assert!(max_capacity_gb > 0.0, "capacity must be positive");
        MemoryPass {
            max_capacity_gb,
            values: ValueAcc::new(approx),
        }
    }
}

impl AnalysisPass for MemoryPass {
    fn stage(&self) -> &'static str {
        cgc_obs::stages::A_MEMORY
    }

    fn observe_job(&mut self, job: &cgc_trace::JobRecord) {
        self.values
            .push(job.mean_memory * self.max_capacity_gb * 1_024.0);
    }

    fn accumulator_bytes(&self) -> usize {
        self.values.bytes()
    }

    fn finish(self: Box<Self>, _ctx: &PassContext) -> PassOutput {
        PassOutput::Memory(finish_summary(self.values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_trace::task::{TaskEvent, TaskEventKind};
    use cgc_trace::{Demand, JobId, MachineId, Priority, TraceBuilder, UserId};

    /// One finished job with the given cpu-seconds over a 100 s wallclock,
    /// and the given normalized mean memory.
    fn trace_with_jobs(specs: &[(f64, f64)]) -> Trace {
        let mut b = TraceBuilder::new("t", 1_000_000);
        b.add_machine(1.0, 1.0, 1.0);
        for (i, &(cpu_seconds, mem)) in specs.iter().enumerate() {
            let submit = i as u64 * 200;
            let j = b.add_job(UserId(0), Priority::from_level(2), submit);
            let t = b.add_task(j, Demand::new(0.1, 0.1));
            b.set_job_usage(JobId::from(i), cpu_seconds, mem);
            b.push_event(TaskEvent {
                time: submit,
                task: t,
                machine: None,
                kind: TaskEventKind::Submit,
            });
            b.push_event(TaskEvent {
                time: submit,
                task: t,
                machine: Some(MachineId(0)),
                kind: TaskEventKind::Schedule,
            });
            b.push_event(TaskEvent {
                time: submit + 100,
                task: t,
                machine: Some(MachineId(0)),
                kind: TaskEventKind::Finish,
            });
        }
        b.build().unwrap()
    }

    #[test]
    fn cpu_usage_in_processor_units() {
        // 100 s wallclock at 200 core-seconds = 2 processors.
        let trace = trace_with_jobs(&[(200.0, 0.0), (50.0, 0.0)]);
        let e = job_cpu_usage(&trace).unwrap();
        assert_eq!(e.len(), 2);
        assert_eq!(e.max(), 2.0);
        assert_eq!(e.min(), 0.5);
    }

    #[test]
    fn memory_denormalization() {
        // mean_memory 0.01 at 32 GB => 327.68 MB; at 64 GB => 655.36 MB.
        let trace = trace_with_jobs(&[(0.0, 0.01)]);
        let at32 = job_memory_mb(&trace, 32.0).unwrap();
        let at64 = job_memory_mb(&trace, 64.0).unwrap();
        assert!((at32.max() - 327.68).abs() < 1e-9);
        assert!((at64.max() - 655.36).abs() < 1e-9);
    }

    #[test]
    fn empty_traces_yield_none() {
        let trace = TraceBuilder::new("t", 10).build().unwrap();
        assert!(job_cpu_usage(&trace).is_none());
        assert!(job_memory_mb(&trace, 32.0).is_none());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let trace = trace_with_jobs(&[(1.0, 0.1)]);
        let _ = job_memory_mb(&trace, 0.0);
    }
}
