//! Submission-frequency analysis (paper Fig. 5 and Table I).
//!
//! Two views of the same arrival stream: the CDF of inter-submission
//! intervals (Fig. 5) and the per-hour rate row — min/mean/max jobs per
//! hour plus Jain's fairness index (Table I). The paper's Google column
//! reads 36 / 552 / 1421 at fairness 0.94; grids sit one to two orders of
//! magnitude lower in rate and far lower in fairness.

use crate::pass::{AnalysisPass, PassContext, PassOutput};
use cgc_stats::{counts_per_window, jain_fairness_counts, Ecdf, Summary};
use cgc_trace::{Trace, HOUR};
use serde::{Deserialize, Serialize};

/// One row of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateRow {
    /// Maximum jobs in any hour.
    pub max: f64,
    /// Mean jobs per hour.
    pub avg: f64,
    /// Minimum jobs in any hour.
    pub min: f64,
    /// Jain's fairness index over the hourly counts.
    pub fairness: f64,
}

/// Submission-frequency analysis of one system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmissionAnalysis {
    /// System label.
    pub system: String,
    /// Table I row.
    pub rate: RateRow,
    /// Summary of inter-submission intervals (seconds).
    pub interval_summary: Summary,
    /// Interval CDF over `[0, 2000]` s, the Fig. 5 axis.
    pub interval_cdf: Vec<(f64, f64)>,
    #[serde(skip)]
    intervals: Option<Ecdf>,
}

impl SubmissionAnalysis {
    /// The interval ECDF (present unless deserialized).
    pub fn intervals(&self) -> Option<&Ecdf> {
        self.intervals.as_ref()
    }
}

/// Analyzes submission frequency; `None` if the trace has fewer than two
/// jobs (no intervals to speak of).
pub fn submission_analysis(trace: &Trace) -> Option<SubmissionAnalysis> {
    assemble(
        trace.system.clone(),
        trace.horizon,
        trace.submission_times(),
    )
}

/// Finish-math shared by [`submission_analysis`] and [`SubmissionPass`]:
/// sorted submission times to the full analysis.
fn assemble(system: String, horizon: u64, times: Vec<u64>) -> Option<SubmissionAnalysis> {
    if times.len() < 2 || horizon == 0 {
        return None;
    }
    let intervals: Vec<u64> = times.windows(2).map(|w| w[1] - w[0]).collect();
    let counts = counts_per_window(&times, HOUR, horizon);
    let count_summary = Summary::of(&counts.iter().map(|&c| c as f64).collect::<Vec<_>>());
    let ecdf = Ecdf::from_durations(&intervals);
    Some(SubmissionAnalysis {
        system,
        rate: RateRow {
            max: count_summary.max,
            avg: count_summary.mean,
            min: count_summary.min,
            fairness: jain_fairness_counts(&counts),
        },
        interval_summary: Summary::of_durations(&intervals),
        interval_cdf: ecdf.curve(0.0, 2_000.0, 101),
        intervals: Some(ecdf),
    })
}

/// Accumulating [`AnalysisPass`] form of [`submission_analysis`].
///
/// Always exact: the analysis needs the *sorted* submission stream (for
/// consecutive intervals and hourly windows), which a bounded sample
/// cannot provide, so the accumulator is the timestamp vector itself —
/// 8 bytes per job, the smallest full-fidelity representation.
#[derive(Debug, Default)]
pub(crate) struct SubmissionPass {
    times: Vec<u64>,
}

impl AnalysisPass for SubmissionPass {
    fn stage(&self) -> &'static str {
        cgc_obs::stages::A_SUBMISSION
    }

    fn observe_job(&mut self, job: &cgc_trace::JobRecord) {
        self.times.push(job.submit_time);
    }

    fn accumulator_bytes(&self) -> usize {
        self.times.len() * std::mem::size_of::<u64>()
    }

    fn finish(self: Box<Self>, ctx: &PassContext) -> PassOutput {
        let mut times = self.times;
        times.sort_unstable();
        PassOutput::Submission(assemble(ctx.system.clone(), ctx.horizon, times))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_trace::{Priority, TraceBuilder, UserId};

    fn trace_with_submits(times: &[u64], horizon: u64) -> Trace {
        let mut b = TraceBuilder::new("t", horizon);
        for &t in times {
            b.add_job(UserId(0), Priority::from_level(1), t);
        }
        b.build().unwrap()
    }

    #[test]
    fn rate_row() {
        // 3 jobs in hour 0, 1 in hour 1, 0 in hour 2.
        let trace = trace_with_submits(&[0, 10, 20, 4_000], 3 * HOUR);
        let a = submission_analysis(&trace).unwrap();
        assert_eq!(a.rate.max, 3.0);
        assert_eq!(a.rate.min, 0.0);
        assert!((a.rate.avg - 4.0 / 3.0).abs() < 1e-12);
        // fairness = (sum)^2 / (n * sum_sq) = 16 / (3 * 10).
        assert!((a.rate.fairness - 16.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn intervals() {
        let trace = trace_with_submits(&[0, 100, 300], HOUR);
        let a = submission_analysis(&trace).unwrap();
        assert_eq!(a.interval_summary.count, 2);
        assert_eq!(a.interval_summary.min, 100.0);
        assert_eq!(a.interval_summary.max, 200.0);
        let cdf = a.intervals().unwrap();
        assert_eq!(cdf.eval(100.0), 0.5);
        assert_eq!(cdf.eval(200.0), 1.0);
    }

    #[test]
    fn too_few_jobs() {
        assert!(submission_analysis(&trace_with_submits(&[5], HOUR)).is_none());
        assert!(submission_analysis(&trace_with_submits(&[], HOUR)).is_none());
    }

    #[test]
    fn curve_axis_matches_fig5() {
        let trace = trace_with_submits(&[0, 50, 90, 4_000], 2 * HOUR);
        let a = submission_analysis(&trace).unwrap();
        assert_eq!(a.interval_cdf.first().unwrap().0, 0.0);
        assert_eq!(a.interval_cdf.last().unwrap().0, 2_000.0);
    }
}
