//! Job-length analysis (paper Fig. 3).
//!
//! Job length is the duration between submission and completion. The
//! paper's finding: over 80% of Google jobs finish within 1000 seconds,
//! while most grid jobs run longer than 2000 seconds.

use crate::pass::{AnalysisPass, PassContext, PassOutput, ResolvedValues, ValueAcc};
use cgc_stats::{Ecdf, Summary};
use cgc_trace::Trace;
use serde::{Deserialize, Serialize};

/// Job-length distribution of one system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobLengthAnalysis {
    /// System label the lengths came from.
    pub system: String,
    /// Scalar summary (seconds).
    pub summary: Summary,
    /// Fraction of jobs shorter than 1000 s (the paper's Google headline).
    pub frac_under_1000s: f64,
    /// Fraction of jobs shorter than 2000 s (the paper's grid threshold).
    pub frac_under_2000s: f64,
    /// CDF evaluated on an even grid over `[0, 10_000]` s, the Fig. 3 axis.
    pub cdf_curve: Vec<(f64, f64)>,
    #[serde(skip)]
    ecdf: Option<Ecdf>,
}

impl JobLengthAnalysis {
    /// The underlying ECDF (present unless deserialized).
    pub fn ecdf(&self) -> Option<&Ecdf> {
        self.ecdf.as_ref()
    }
}

/// Analyzes finished-job lengths; `None` if the trace has no finished jobs.
pub fn job_length_analysis(trace: &Trace) -> Option<JobLengthAnalysis> {
    let lengths: Vec<f64> = trace
        .jobs
        .iter()
        .filter_map(|j| j.length())
        .map(|l| l as f64)
        .collect();
    assemble(trace.system.clone(), lengths)
}

/// Finish-math shared by [`job_length_analysis`] and [`JobLengthPass`]:
/// lengths (seconds, job order) to the full analysis.
fn assemble(system: String, lengths: Vec<f64>) -> Option<JobLengthAnalysis> {
    if lengths.is_empty() {
        return None;
    }
    let summary = Summary::of(&lengths);
    let ecdf = Ecdf::new(lengths);
    Some(JobLengthAnalysis {
        system,
        summary,
        frac_under_1000s: ecdf.eval(1_000.0),
        frac_under_2000s: ecdf.eval(2_000.0),
        cdf_curve: ecdf.curve(0.0, 10_000.0, 101),
        ecdf: Some(ecdf),
    })
}

/// Accumulating [`AnalysisPass`] form of [`job_length_analysis`].
#[derive(Debug)]
pub(crate) struct JobLengthPass {
    lengths: ValueAcc,
}

impl JobLengthPass {
    pub(crate) fn new(approx: bool) -> Self {
        JobLengthPass {
            lengths: ValueAcc::new(approx),
        }
    }
}

impl AnalysisPass for JobLengthPass {
    fn stage(&self) -> &'static str {
        cgc_obs::stages::A_JOB_LENGTH
    }

    fn observe_job(&mut self, job: &cgc_trace::JobRecord) {
        if let Some(len) = job.length() {
            self.lengths.push(len as f64);
        }
    }

    fn accumulator_bytes(&self) -> usize {
        self.lengths.bytes()
    }

    fn finish(self: Box<Self>, ctx: &PassContext) -> PassOutput {
        let analysis = match self.lengths.resolve() {
            ResolvedValues::Exact(lengths) => assemble(ctx.system.clone(), lengths),
            ResolvedValues::Approx { moments, sample } => {
                assemble(ctx.system.clone(), sample).map(|mut a| {
                    a.summary = crate::pass::approx_summary(&a.summary, &moments);
                    a
                })
            }
        };
        PassOutput::JobLength(analysis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_trace::task::{TaskEvent, TaskEventKind};
    use cgc_trace::{Demand, Priority, TraceBuilder, UserId};

    fn trace_with_lengths(lengths: &[u64]) -> Trace {
        let mut b = TraceBuilder::new("t", 1_000_000);
        b.add_machine(1.0, 1.0, 1.0);
        for (i, &len) in lengths.iter().enumerate() {
            let submit = i as u64 * 10;
            let j = b.add_job(UserId(0), Priority::from_level(2), submit);
            let t = b.add_task(j, Demand::new(0.01, 0.01));
            b.push_event(TaskEvent {
                time: submit,
                task: t,
                machine: None,
                kind: TaskEventKind::Submit,
            });
            b.push_event(TaskEvent {
                time: submit,
                task: t,
                machine: Some(cgc_trace::MachineId(0)),
                kind: TaskEventKind::Schedule,
            });
            b.push_event(TaskEvent {
                time: submit + len,
                task: t,
                machine: Some(cgc_trace::MachineId(0)),
                kind: TaskEventKind::Finish,
            });
        }
        b.build().unwrap()
    }

    #[test]
    fn fractions_and_summary() {
        let trace = trace_with_lengths(&[100, 500, 1_500, 3_000]);
        let a = job_length_analysis(&trace).unwrap();
        assert_eq!(a.summary.count, 4);
        assert_eq!(a.frac_under_1000s, 0.5);
        assert_eq!(a.frac_under_2000s, 0.75);
        assert_eq!(a.summary.max, 3_000.0);
    }

    #[test]
    fn curve_spans_fig3_axis() {
        let trace = trace_with_lengths(&[100, 200]);
        let a = job_length_analysis(&trace).unwrap();
        assert_eq!(a.cdf_curve.len(), 101);
        assert_eq!(a.cdf_curve[0].0, 0.0);
        assert_eq!(a.cdf_curve.last().unwrap().0, 10_000.0);
        assert_eq!(a.cdf_curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn none_without_finished_jobs() {
        let mut b = TraceBuilder::new("t", 100);
        b.add_job(UserId(0), Priority::from_level(1), 0);
        let trace = b.build().unwrap();
        assert!(job_length_analysis(&trace).is_none());
    }

    #[test]
    fn ecdf_accessible() {
        let trace = trace_with_lengths(&[50]);
        let a = job_length_analysis(&trace).unwrap();
        assert_eq!(a.ecdf().unwrap().len(), 1);
    }
}
