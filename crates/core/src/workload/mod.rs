//! Work-load analyses (paper Section III): jobs and tasks as submitted by
//! users, independent of which machines ran them.

pub mod job_length;
pub mod priority;
pub mod resubmission;
pub mod submission;
pub mod task_length;
pub mod users;
pub mod utilization;

pub use job_length::{job_length_analysis, JobLengthAnalysis};
pub use priority::{priority_histogram, PriorityHistogram};
pub use resubmission::{resubmission_analysis, ResubmissionAnalysis, CRASH_LOOP_ATTEMPTS};
pub use submission::{submission_analysis, RateRow, SubmissionAnalysis};
pub use task_length::{task_length_analysis, TaskLengthAnalysis};
pub use users::{user_activity, UserActivity};
pub use utilization::{job_cpu_usage, job_memory_mb};
