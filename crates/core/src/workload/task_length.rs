//! Task-length mass–count analysis (paper Fig. 4 and the §VI headlines).
//!
//! Task length is the accumulated execution time across attempts. The
//! paper's signature result: Google's task lengths follow the Pareto
//! principle far more strongly than AuverGrid's — joint ratio 6/94 versus
//! 24/76 — because the handful of week-long services carries almost all the
//! compute mass while 55% of tasks finish within 10 minutes.

use crate::pass::{AnalysisPass, PassContext, PassOutput, ResolvedValues, ValueAcc};
use cgc_stats::{MassCount, MassCountSummary, Summary};
use cgc_trace::{Trace, HOUR, MINUTE};
use serde::{Deserialize, Serialize};

/// Task-length analysis of one system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskLengthAnalysis {
    /// System label.
    pub system: String,
    /// Scalar summary of execution times (seconds).
    pub summary: Summary,
    /// Mass–count summary (joint ratio, mm-distance in seconds).
    pub masscount: MassCountSummary,
    /// Fraction of tasks finishing within 10 minutes (§VI: ≈ 55%).
    pub frac_under_10min: f64,
    /// Fraction under 1 hour (§VI: ≈ 90%).
    pub frac_under_1h: f64,
    /// Fraction under 3 hours (Fig. 4: ≈ 94%).
    pub frac_under_3h: f64,
    /// `(length_days, count_cdf, mass_cdf)` staircase for plotting Fig. 4,
    /// decimated to at most 512 points.
    pub curves_days: Vec<(f64, f64, f64)>,
}

/// Analyzes task execution times; `None` if no task ever ran (or all
/// execution times are zero).
pub fn task_length_analysis(trace: &Trace) -> Option<TaskLengthAnalysis> {
    let lengths: Vec<f64> = trace
        .tasks
        .iter()
        .filter(|t| t.ever_ran())
        .map(|t| t.execution_time as f64)
        .collect();
    assemble(trace.system.clone(), lengths)
}

/// Finish-math shared by [`task_length_analysis`] and [`TaskLengthPass`]:
/// execution times (seconds, task order) to the full analysis.
///
/// The under-threshold fractions come from one `partition_point` probe
/// per threshold on the mass–count's sorted lengths, replacing the three
/// O(n) filter scans the analysis used to make over the raw vector.
fn assemble(system: String, lengths: Vec<f64>) -> Option<TaskLengthAnalysis> {
    let summary = Summary::of(&lengths);
    let n = lengths.len() as f64;
    let mc = MassCount::new(lengths)?;
    let frac_under = |secs: f64| mc.sorted().partition_point(|&l| l <= secs) as f64 / n;
    let day = cgc_trace::DAY as f64;
    let curves = cgc_stats::decimate(mc.curves(), 512)
        .into_iter()
        .map(|(x, fc, fm)| (x / day, fc, fm))
        .collect();
    Some(TaskLengthAnalysis {
        system,
        summary,
        masscount: mc.summary(),
        frac_under_10min: frac_under(10.0 * MINUTE as f64),
        frac_under_1h: frac_under(HOUR as f64),
        frac_under_3h: frac_under(3.0 * HOUR as f64),
        curves_days: curves,
    })
}

/// Accumulating [`AnalysisPass`] form of [`task_length_analysis`].
#[derive(Debug)]
pub(crate) struct TaskLengthPass {
    lengths: ValueAcc,
}

impl TaskLengthPass {
    pub(crate) fn new(approx: bool) -> Self {
        TaskLengthPass {
            lengths: ValueAcc::new(approx),
        }
    }
}

impl AnalysisPass for TaskLengthPass {
    fn stage(&self) -> &'static str {
        cgc_obs::stages::A_TASK_LENGTH
    }

    fn observe_task(&mut self, task: &cgc_trace::TaskRecord) {
        if task.ever_ran() {
            self.lengths.push(task.execution_time as f64);
        }
    }

    fn accumulator_bytes(&self) -> usize {
        self.lengths.bytes()
    }

    fn finish(self: Box<Self>, ctx: &PassContext) -> PassOutput {
        let analysis = match self.lengths.resolve() {
            ResolvedValues::Exact(lengths) => assemble(ctx.system.clone(), lengths),
            ResolvedValues::Approx { moments, sample } => {
                assemble(ctx.system.clone(), sample).map(|mut a| {
                    a.summary = crate::pass::approx_summary(&a.summary, &moments);
                    a
                })
            }
        };
        PassOutput::TaskLength(analysis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_trace::task::{TaskEvent, TaskEventKind};
    use cgc_trace::{Demand, MachineId, Priority, TraceBuilder, UserId};

    fn trace_with_exec_times(lengths: &[u64]) -> Trace {
        let mut b = TraceBuilder::new("t", u64::MAX / 2);
        b.add_machine(1.0, 1.0, 1.0);
        for (i, &len) in lengths.iter().enumerate() {
            let submit = i as u64;
            let j = b.add_job(UserId(0), Priority::from_level(2), submit);
            let t = b.add_task(j, Demand::new(0.01, 0.01));
            b.push_event(TaskEvent {
                time: submit,
                task: t,
                machine: None,
                kind: TaskEventKind::Submit,
            });
            b.push_event(TaskEvent {
                time: submit,
                task: t,
                machine: Some(MachineId(0)),
                kind: TaskEventKind::Schedule,
            });
            b.push_event(TaskEvent {
                time: submit + len,
                task: t,
                machine: Some(MachineId(0)),
                kind: TaskEventKind::Finish,
            });
        }
        b.build().unwrap()
    }

    #[test]
    fn quantile_fractions() {
        let lengths = [60, 300, 500, 3_000, 2 * HOUR, 10 * HOUR];
        let a = task_length_analysis(&trace_with_exec_times(&lengths)).unwrap();
        assert!((a.frac_under_10min - 3.0 / 6.0).abs() < 1e-12);
        assert!((a.frac_under_1h - 4.0 / 6.0).abs() < 1e-12);
        assert!((a.frac_under_3h - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn masscount_summary_present() {
        let a = task_length_analysis(&trace_with_exec_times(&[10, 10, 10, 1_000])).unwrap();
        assert_eq!(a.masscount.items, 4);
        assert!(a.masscount.mm_distance > 0.0);
    }

    #[test]
    fn curves_in_days() {
        let day = cgc_trace::DAY;
        let a = task_length_analysis(&trace_with_exec_times(&[day, 2 * day])).unwrap();
        let xs: Vec<f64> = a.curves_days.iter().map(|p| p.0).collect();
        assert!((xs[0] - 1.0).abs() < 1e-9);
        assert!((xs.last().unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn none_when_nothing_ran() {
        let mut b = TraceBuilder::new("t", 100);
        b.add_job(UserId(0), Priority::from_level(1), 0);
        let trace = b.build().unwrap();
        assert!(task_length_analysis(&trace).is_none());
    }

    #[test]
    fn decimation_bounds_points() {
        let lengths: Vec<u64> = (1..2_000).collect();
        let a = task_length_analysis(&trace_with_exec_times(&lengths)).unwrap();
        assert!(a.curves_days.len() <= 512);
        // Last point still reaches CDF 1.
        let last = a.curves_days.last().unwrap();
        assert!((last.1 - 1.0).abs() < 1e-9);
    }
}
