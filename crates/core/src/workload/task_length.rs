//! Task-length mass–count analysis (paper Fig. 4 and the §VI headlines).
//!
//! Task length is the accumulated execution time across attempts. The
//! paper's signature result: Google's task lengths follow the Pareto
//! principle far more strongly than AuverGrid's — joint ratio 6/94 versus
//! 24/76 — because the handful of week-long services carries almost all the
//! compute mass while 55% of tasks finish within 10 minutes.

use cgc_stats::{MassCount, MassCountSummary, Summary};
use cgc_trace::{Trace, HOUR, MINUTE};
use serde::{Deserialize, Serialize};

/// Task-length analysis of one system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskLengthAnalysis {
    /// System label.
    pub system: String,
    /// Scalar summary of execution times (seconds).
    pub summary: Summary,
    /// Mass–count summary (joint ratio, mm-distance in seconds).
    pub masscount: MassCountSummary,
    /// Fraction of tasks finishing within 10 minutes (§VI: ≈ 55%).
    pub frac_under_10min: f64,
    /// Fraction under 1 hour (§VI: ≈ 90%).
    pub frac_under_1h: f64,
    /// Fraction under 3 hours (Fig. 4: ≈ 94%).
    pub frac_under_3h: f64,
    /// `(length_days, count_cdf, mass_cdf)` staircase for plotting Fig. 4,
    /// decimated to at most 512 points.
    pub curves_days: Vec<(f64, f64, f64)>,
}

/// Analyzes task execution times; `None` if no task ever ran (or all
/// execution times are zero).
pub fn task_length_analysis(trace: &Trace) -> Option<TaskLengthAnalysis> {
    let lengths = trace.task_execution_times();
    let mc = MassCount::from_durations(&lengths)?;
    let n = lengths.len() as f64;
    let frac_under = |secs: f64| lengths.iter().filter(|&&l| (l as f64) <= secs).count() as f64 / n;
    let day = cgc_trace::DAY as f64;
    let curves = decimate(mc.curves(), 512)
        .into_iter()
        .map(|(x, fc, fm)| (x / day, fc, fm))
        .collect();
    Some(TaskLengthAnalysis {
        system: trace.system.clone(),
        summary: Summary::of_durations(&lengths),
        masscount: mc.summary(),
        frac_under_10min: frac_under(10.0 * MINUTE as f64),
        frac_under_1h: frac_under(HOUR as f64),
        frac_under_3h: frac_under(3.0 * HOUR as f64),
        curves_days: curves,
    })
}

fn decimate<T: Copy>(points: Vec<T>, max: usize) -> Vec<T> {
    if points.len() <= max {
        return points;
    }
    let step = points.len() as f64 / max as f64;
    let mut out: Vec<T> = (0..max)
        .map(|i| points[(i as f64 * step) as usize])
        .collect();
    if let Some(&last) = points.last() {
        *out.last_mut().expect("max >= 1") = last;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_trace::task::{TaskEvent, TaskEventKind};
    use cgc_trace::{Demand, MachineId, Priority, TraceBuilder, UserId};

    fn trace_with_exec_times(lengths: &[u64]) -> Trace {
        let mut b = TraceBuilder::new("t", u64::MAX / 2);
        b.add_machine(1.0, 1.0, 1.0);
        for (i, &len) in lengths.iter().enumerate() {
            let submit = i as u64;
            let j = b.add_job(UserId(0), Priority::from_level(2), submit);
            let t = b.add_task(j, Demand::new(0.01, 0.01));
            b.push_event(TaskEvent {
                time: submit,
                task: t,
                machine: None,
                kind: TaskEventKind::Submit,
            });
            b.push_event(TaskEvent {
                time: submit,
                task: t,
                machine: Some(MachineId(0)),
                kind: TaskEventKind::Schedule,
            });
            b.push_event(TaskEvent {
                time: submit + len,
                task: t,
                machine: Some(MachineId(0)),
                kind: TaskEventKind::Finish,
            });
        }
        b.build().unwrap()
    }

    #[test]
    fn quantile_fractions() {
        let lengths = [60, 300, 500, 3_000, 2 * HOUR, 10 * HOUR];
        let a = task_length_analysis(&trace_with_exec_times(&lengths)).unwrap();
        assert!((a.frac_under_10min - 3.0 / 6.0).abs() < 1e-12);
        assert!((a.frac_under_1h - 4.0 / 6.0).abs() < 1e-12);
        assert!((a.frac_under_3h - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn masscount_summary_present() {
        let a = task_length_analysis(&trace_with_exec_times(&[10, 10, 10, 1_000])).unwrap();
        assert_eq!(a.masscount.items, 4);
        assert!(a.masscount.mm_distance > 0.0);
    }

    #[test]
    fn curves_in_days() {
        let day = cgc_trace::DAY;
        let a = task_length_analysis(&trace_with_exec_times(&[day, 2 * day])).unwrap();
        let xs: Vec<f64> = a.curves_days.iter().map(|p| p.0).collect();
        assert!((xs[0] - 1.0).abs() < 1e-9);
        assert!((xs.last().unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn none_when_nothing_ran() {
        let mut b = TraceBuilder::new("t", 100);
        b.add_job(UserId(0), Priority::from_level(1), 0);
        let trace = b.build().unwrap();
        assert!(task_length_analysis(&trace).is_none());
    }

    #[test]
    fn decimation_bounds_points() {
        let lengths: Vec<u64> = (1..2_000).collect();
        let a = task_length_analysis(&trace_with_exec_times(&lengths)).unwrap();
        assert!(a.curves_days.len() <= 512);
        // Last point still reaches CDF 1.
        let last = a.curves_days.last().unwrap();
        assert!((last.1 - 1.0).abs() < 1e-9);
    }
}
