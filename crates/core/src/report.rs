//! One-call characterization of a trace.
//!
//! [`characterize`] runs every analysis that the trace supports (host-load
//! sections are skipped for workload-only traces) and returns a
//! serializable [`CharacterizationReport`] whose `Display` output reads
//! like the paper's summary section.
//!
//! Since the analysis-pass refactor this is a thin driver: workload
//! analyses are [`crate::pass::AnalysisPass`] accumulators fed by one
//! shared sweep over the trace's records, and host-load analyses run over
//! one shared [`TraceView`] that extracts each attribute series exactly
//! once. The report JSON is bit-identical to the old function-per-figure
//! scans.

use crate::hostload::{
    HostComparison, LevelRunTable, MaxLoadDistribution, QueueRunLengths, UsageMassCount,
};
use crate::pass::{self, PassContext};
use crate::view::TraceView;
use crate::workload::{
    JobLengthAnalysis, PriorityHistogram, ResubmissionAnalysis, SubmissionAnalysis,
    TaskLengthAnalysis,
};
use cgc_stats::Summary;
use cgc_trace::Trace;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Work-load side of the report (paper Section III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSection {
    /// Fig. 2.
    pub priorities: PriorityHistogram,
    /// Fig. 3.
    pub job_length: Option<JobLengthAnalysis>,
    /// Fig. 5 + Table I.
    pub submission: Option<SubmissionAnalysis>,
    /// Fig. 4 + §VI quantiles.
    pub task_length: Option<TaskLengthAnalysis>,
    /// Fig. 6(a) summary (processor units).
    pub cpu_usage: Option<Summary>,
    /// Fig. 6(b) summary at a 32 GB reference capacity (MB).
    pub memory_mb_at_32gb: Option<Summary>,
    /// §IV.B.1 completion mix and resubmission behaviour.
    pub resubmission: Option<ResubmissionAnalysis>,
}

/// Host-load side of the report (paper Section IV).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostloadSection {
    /// Fig. 7, all four attributes.
    pub max_loads: Vec<MaxLoadDistribution>,
    /// Fig. 9.
    pub queue_runs: QueueRunLengths,
    /// Table II (CPU bands, all tasks).
    pub cpu_level_runs: LevelRunTable,
    /// Table III (memory bands, all tasks).
    pub memory_level_runs: LevelRunTable,
    /// Fig. 11 (CPU: all tasks, and the paper's "high-priority" view,
    /// meaning priorities above 4).
    pub cpu_masscount: Option<UsageMassCount>,
    /// Fig. 11(b).
    pub cpu_masscount_high: Option<UsageMassCount>,
    /// Fig. 12 (memory).
    pub memory_masscount: Option<UsageMassCount>,
    /// Fig. 12(b).
    pub memory_masscount_high: Option<UsageMassCount>,
    /// Fig. 13 headline numbers.
    pub comparison: Option<HostComparison>,
}

/// Full characterization of one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharacterizationReport {
    /// System label of the analyzed trace.
    pub system: String,
    /// Section III analyses.
    pub workload: WorkloadSection,
    /// Section IV analyses, absent for workload-only traces.
    pub hostload: Option<HostloadSection>,
}

/// Runs every supported analysis on the trace.
///
/// The workload section comes from one shared sweep over the job, task,
/// and event records feeding every registered [`crate::pass::AnalysisPass`]
/// at once; the host-load section runs its (non-streamable) passes over a
/// shared [`TraceView`], forked onto the rayon pool. The result is
/// deterministic regardless of thread count: each pass writes only its
/// own slot in the report.
pub fn characterize(trace: &Trace) -> CharacterizationReport {
    characterize_with(trace, false)
}

/// [`characterize`] with the host-load registry in its pre-optimization
/// (reference) form: per-machine queue replay, per-lag autocorrelation,
/// and two-sort row summaries instead of the single-sweep/hoisted/
/// shared-sort implementations. The report is bit-identical — this is
/// the analysis half of `cgc-bench`'s seed-equivalent baseline and a
/// whole-report differential oracle for the optimized passes.
pub fn characterize_reference(trace: &Trace) -> CharacterizationReport {
    characterize_with(trace, true)
}

fn characterize_with(trace: &Trace, reference: bool) -> CharacterizationReport {
    let span = cgc_obs::span(cgc_obs::stages::CHARACTERIZE);
    // The sections fork onto rayon threads, which breaks the
    // thread-local span chain; carry the root id explicitly so exported
    // span trees keep every analysis nested under `characterize`.
    let root = span.id();
    let view = TraceView::new(trace);
    let ctx = PassContext {
        system: trace.system.clone(),
        horizon: trace.horizon,
    };
    let (workload, hostload) = rayon::join(
        || workload_section(trace, &ctx, root),
        || hostload_section(&view, &ctx, root, reference),
    );
    CharacterizationReport {
        system: trace.system.clone(),
        workload,
        hostload,
    }
}

/// Section III: sweep the records once through the workload registry,
/// then finish each pass into its report slot.
fn workload_section(trace: &Trace, ctx: &PassContext, parent: Option<u64>) -> WorkloadSection {
    let mut passes = pass::workload_passes(false);
    pass::spanned(cgc_obs::stages::A_SWEEP, parent, || {
        pass::observe_records(&mut passes, &trace.jobs, &trace.tasks, &trace.events);
    });
    pass::finish_workload(passes, ctx, parent)
}

/// Section IV: run the host-load registry over the shared view. `None`
/// for workload-only traces (no machine reported a sample).
fn hostload_section(
    view: &TraceView<'_>,
    ctx: &PassContext,
    parent: Option<u64>,
    reference: bool,
) -> Option<HostloadSection> {
    if !view.trace().host_series.iter().any(|s| !s.is_empty()) {
        return None;
    }
    Some(pass::run_hostload(view, ctx, parent, reference))
}

impl fmt::Display for CharacterizationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== Characterization of {} ===", self.system)?;
        let w = &self.workload;
        writeln!(
            f,
            "jobs: {}  tasks: {}  (low-priority job share {:.0}%)",
            w.priorities.total_jobs(),
            w.priorities.total_tasks(),
            100.0 * w.priorities.low_priority_job_share()
        )?;
        if let Some(jl) = &w.job_length {
            writeln!(
                f,
                "job length: mean {:.0}s median {:.0}s  F(1000s)={:.2} F(2000s)={:.2}",
                jl.summary.mean, jl.summary.median, jl.frac_under_1000s, jl.frac_under_2000s
            )?;
        }
        if let Some(s) = &w.submission {
            writeln!(
                f,
                "submissions/hour: min {:.0} avg {:.1} max {:.0}  fairness {:.2}",
                s.rate.min, s.rate.avg, s.rate.max, s.rate.fairness
            )?;
        }
        if let Some(t) = &w.task_length {
            writeln!(
                f,
                "task length: {:.0}% <10min, {:.0}% <1h, {:.0}% <3h; joint ratio {} mmdis {:.2} days",
                100.0 * t.frac_under_10min,
                100.0 * t.frac_under_1h,
                100.0 * t.frac_under_3h,
                t.masscount.joint_ratio_label(),
                t.masscount.mm_distance / cgc_trace::DAY as f64,
            )?;
        }
        if let Some(c) = &w.cpu_usage {
            writeln!(
                f,
                "job cpu usage (processors): mean {:.2} max {:.1}",
                c.mean, c.max
            )?;
        }
        if let Some(r) = &w.resubmission {
            writeln!(
                f,
                "completions: {:.1}% abnormal (fail {:.0}% / kill {:.0}% of abnormal); \
                 attempts mean {:.2} max {}  crash-loopers {}  mean retry gap {:.0}s",
                100.0 * r.abnormal_fraction,
                100.0 * r.fail_share_of_abnormal,
                100.0 * r.kill_share_of_abnormal,
                r.mean_attempts,
                r.max_attempts,
                r.crash_looper_tasks,
                r.mean_resubmit_gap
            )?;
        }
        if let Some(h) = &self.hostload {
            if let Some(c) = &h.comparison {
                writeln!(
                    f,
                    "host load: cpu {:.0}% mem {:.0}%  noise(min/mean/max) {:.5}/{:.5}/{:.5}  autocorr {:.4}",
                    100.0 * c.cpu_mean_utilization,
                    100.0 * c.memory_mean_utilization,
                    c.cpu_noise.min,
                    c.cpu_noise.mean,
                    c.cpu_noise.max,
                    c.cpu_autocorrelation
                )?;
            }
            if let Some(mc) = &h.cpu_masscount {
                writeln!(
                    f,
                    "cpu usage mass-count: joint {} mmdis {:.0}%",
                    mc.masscount.joint_ratio_label(),
                    mc.masscount.mm_distance
                )?;
            }
            if let Some(mc) = &h.memory_masscount {
                writeln!(
                    f,
                    "mem usage mass-count: joint {} mmdis {:.0}%",
                    mc.masscount.joint_ratio_label(),
                    mc.masscount.mm_distance
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_trace::TraceBuilder;

    #[test]
    fn empty_trace_report() {
        let trace = TraceBuilder::new("empty", 100).build().unwrap();
        let r = characterize(&trace);
        assert_eq!(r.system, "empty");
        assert!(r.workload.job_length.is_none());
        assert!(r.hostload.is_none());
        // Display must not panic.
        let text = r.to_string();
        assert!(text.contains("empty"));
    }

    #[test]
    fn report_serializes_to_json() {
        let trace = TraceBuilder::new("x", 100).build().unwrap();
        let r = characterize(&trace);
        let json = serde_json::to_string(&r).unwrap();
        let back: CharacterizationReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.system, "x");
    }
}
