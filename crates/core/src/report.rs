//! One-call characterization of a trace.
//!
//! [`characterize`] runs every analysis that the trace supports (host-load
//! sections are skipped for workload-only traces) and returns a
//! serializable [`CharacterizationReport`] whose `Display` output reads
//! like the paper's summary section.

use crate::hostload::{
    host_comparison, max_load_distribution, queue_runlengths, usage_level_runs, usage_masscount,
    HostComparison, LevelRunTable, MaxLoadDistribution, QueueRunLengths, UsageMassCount,
};
use crate::workload::{
    job_length_analysis, priority_histogram, resubmission_analysis, submission_analysis,
    task_length_analysis, JobLengthAnalysis, PriorityHistogram, ResubmissionAnalysis,
    SubmissionAnalysis, TaskLengthAnalysis,
};
use cgc_stats::Summary;
use cgc_trace::usage::UsageAttribute;
use cgc_trace::{PriorityClass, Trace};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Work-load side of the report (paper Section III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSection {
    /// Fig. 2.
    pub priorities: PriorityHistogram,
    /// Fig. 3.
    pub job_length: Option<JobLengthAnalysis>,
    /// Fig. 5 + Table I.
    pub submission: Option<SubmissionAnalysis>,
    /// Fig. 4 + §VI quantiles.
    pub task_length: Option<TaskLengthAnalysis>,
    /// Fig. 6(a) summary (processor units).
    pub cpu_usage: Option<Summary>,
    /// Fig. 6(b) summary at a 32 GB reference capacity (MB).
    pub memory_mb_at_32gb: Option<Summary>,
    /// §IV.B.1 completion mix and resubmission behaviour.
    pub resubmission: Option<ResubmissionAnalysis>,
}

/// Host-load side of the report (paper Section IV).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostloadSection {
    /// Fig. 7, all four attributes.
    pub max_loads: Vec<MaxLoadDistribution>,
    /// Fig. 9.
    pub queue_runs: QueueRunLengths,
    /// Table II (CPU bands, all tasks).
    pub cpu_level_runs: LevelRunTable,
    /// Table III (memory bands, all tasks).
    pub memory_level_runs: LevelRunTable,
    /// Fig. 11 (CPU: all tasks, and the paper's "high-priority" view,
    /// meaning priorities above 4).
    pub cpu_masscount: Option<UsageMassCount>,
    /// Fig. 11(b).
    pub cpu_masscount_high: Option<UsageMassCount>,
    /// Fig. 12 (memory).
    pub memory_masscount: Option<UsageMassCount>,
    /// Fig. 12(b).
    pub memory_masscount_high: Option<UsageMassCount>,
    /// Fig. 13 headline numbers.
    pub comparison: Option<HostComparison>,
}

/// Full characterization of one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharacterizationReport {
    /// System label of the analyzed trace.
    pub system: String,
    /// Section III analyses.
    pub workload: WorkloadSection,
    /// Section IV analyses, absent for workload-only traces.
    pub hostload: Option<HostloadSection>,
}

/// Histogram resolution of the Fig. 7 reproduction.
const MAX_LOAD_BINS: usize = 25;

/// Sampling period for the Fig. 9 queue-state series, in seconds.
const QUEUE_SAMPLE_PERIOD: u64 = 60;

/// Runs every supported analysis on the trace.
///
/// Every analysis is an independent pure pass over the shared `&Trace`,
/// so the two report sections — and the analyses within each — are forked
/// onto the rayon pool with [`rayon::join`]. The result is deterministic
/// regardless of thread count: each analysis writes only its own slot in
/// the report.
pub fn characterize(trace: &Trace) -> CharacterizationReport {
    let _span = cgc_obs::span(cgc_obs::stages::CHARACTERIZE);
    let (workload, hostload) = rayon::join(|| workload_section(trace), || hostload_section(trace));
    CharacterizationReport {
        system: trace.system.clone(),
        workload,
        hostload,
    }
}

/// Runs one analysis under its observability span, so per-analysis
/// durations land in the metrics snapshot (and the span observer) even
/// though the analyses execute on rayon worker threads.
fn spanned<T>(stage: &'static str, f: impl FnOnce() -> T) -> T {
    let _span = cgc_obs::span(stage);
    f()
}

/// Section III analyses, pairwise forked.
fn workload_section(trace: &Trace) -> WorkloadSection {
    use cgc_obs::stages;
    let ((job_length, task_length), ((submission, resubmission), (cpu_usage, memory_mb))) =
        rayon::join(
            || {
                rayon::join(
                    || spanned(stages::A_JOB_LENGTH, || job_length_analysis(trace)),
                    || spanned(stages::A_TASK_LENGTH, || task_length_analysis(trace)),
                )
            },
            || {
                rayon::join(
                    || {
                        rayon::join(
                            || spanned(stages::A_SUBMISSION, || submission_analysis(trace)),
                            || spanned(stages::A_RESUBMISSION, || resubmission_analysis(trace)),
                        )
                    },
                    || {
                        rayon::join(
                            || {
                                spanned(stages::A_CPU_USAGE, || {
                                    crate::workload::job_cpu_usage(trace)
                                        .map(|e| Summary::of(e.values()))
                                })
                            },
                            || {
                                spanned(stages::A_MEMORY, || {
                                    crate::workload::job_memory_mb(trace, 32.0)
                                        .map(|e| Summary::of(e.values()))
                                })
                            },
                        )
                    },
                )
            },
        );
    WorkloadSection {
        priorities: spanned(stages::A_PRIORITIES, || priority_histogram(trace)),
        job_length,
        submission,
        task_length,
        cpu_usage,
        memory_mb_at_32gb: memory_mb,
        resubmission,
    }
}

/// Section IV analyses, pairwise forked; the four mass-count passes are
/// the heavy ones and get their own subtree.
fn hostload_section(trace: &Trace) -> Option<HostloadSection> {
    if !trace.host_series.iter().any(|s| !s.is_empty()) {
        return None;
    }
    use cgc_obs::stages;
    let ((max_loads, queue_runs), ((cpu_level_runs, memory_level_runs), masscounts)) = rayon::join(
        || {
            rayon::join(
                || {
                    spanned(stages::A_MAX_LOADS, || {
                        UsageAttribute::ALL
                            .iter()
                            .map(|&attr| max_load_distribution(trace, attr, MAX_LOAD_BINS))
                            .collect()
                    })
                },
                || {
                    spanned(stages::A_QUEUE_RUNS, || {
                        queue_runlengths(trace, QUEUE_SAMPLE_PERIOD)
                    })
                },
            )
        },
        || {
            rayon::join(
                || {
                    rayon::join(
                        || {
                            spanned(stages::A_LEVEL_RUNS, || {
                                usage_level_runs(trace, UsageAttribute::Cpu, None)
                            })
                        },
                        || {
                            spanned(stages::A_LEVEL_RUNS, || {
                                usage_level_runs(trace, UsageAttribute::MemoryUsed, None)
                            })
                        },
                    )
                },
                || {
                    rayon::join(
                        || {
                            rayon::join(
                                || {
                                    spanned(stages::A_MASSCOUNT, || {
                                        usage_masscount(trace, UsageAttribute::Cpu, None)
                                    })
                                },
                                || {
                                    spanned(stages::A_MASSCOUNT, || {
                                        usage_masscount(
                                            trace,
                                            UsageAttribute::Cpu,
                                            Some(PriorityClass::Middle),
                                        )
                                    })
                                },
                            )
                        },
                        || {
                            rayon::join(
                                || {
                                    spanned(stages::A_MASSCOUNT, || {
                                        usage_masscount(trace, UsageAttribute::MemoryUsed, None)
                                    })
                                },
                                || {
                                    spanned(stages::A_MASSCOUNT, || {
                                        usage_masscount(
                                            trace,
                                            UsageAttribute::MemoryUsed,
                                            Some(PriorityClass::Middle),
                                        )
                                    })
                                },
                            )
                        },
                    )
                },
            )
        },
    );
    let ((cpu_masscount, cpu_masscount_high), (memory_masscount, memory_masscount_high)) =
        masscounts;
    Some(HostloadSection {
        max_loads,
        queue_runs,
        cpu_level_runs,
        memory_level_runs,
        cpu_masscount,
        cpu_masscount_high,
        memory_masscount,
        memory_masscount_high,
        comparison: spanned(stages::A_COMPARISON, || host_comparison(trace, 0)),
    })
}

impl fmt::Display for CharacterizationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== Characterization of {} ===", self.system)?;
        let w = &self.workload;
        writeln!(
            f,
            "jobs: {}  tasks: {}  (low-priority job share {:.0}%)",
            w.priorities.total_jobs(),
            w.priorities.total_tasks(),
            100.0 * w.priorities.low_priority_job_share()
        )?;
        if let Some(jl) = &w.job_length {
            writeln!(
                f,
                "job length: mean {:.0}s median {:.0}s  F(1000s)={:.2} F(2000s)={:.2}",
                jl.summary.mean, jl.summary.median, jl.frac_under_1000s, jl.frac_under_2000s
            )?;
        }
        if let Some(s) = &w.submission {
            writeln!(
                f,
                "submissions/hour: min {:.0} avg {:.1} max {:.0}  fairness {:.2}",
                s.rate.min, s.rate.avg, s.rate.max, s.rate.fairness
            )?;
        }
        if let Some(t) = &w.task_length {
            writeln!(
                f,
                "task length: {:.0}% <10min, {:.0}% <1h, {:.0}% <3h; joint ratio {} mmdis {:.2} days",
                100.0 * t.frac_under_10min,
                100.0 * t.frac_under_1h,
                100.0 * t.frac_under_3h,
                t.masscount.joint_ratio_label(),
                t.masscount.mm_distance / cgc_trace::DAY as f64,
            )?;
        }
        if let Some(c) = &w.cpu_usage {
            writeln!(
                f,
                "job cpu usage (processors): mean {:.2} max {:.1}",
                c.mean, c.max
            )?;
        }
        if let Some(r) = &w.resubmission {
            writeln!(
                f,
                "completions: {:.1}% abnormal (fail {:.0}% / kill {:.0}% of abnormal); \
                 attempts mean {:.2} max {}  crash-loopers {}  mean retry gap {:.0}s",
                100.0 * r.abnormal_fraction,
                100.0 * r.fail_share_of_abnormal,
                100.0 * r.kill_share_of_abnormal,
                r.mean_attempts,
                r.max_attempts,
                r.crash_looper_tasks,
                r.mean_resubmit_gap
            )?;
        }
        if let Some(h) = &self.hostload {
            if let Some(c) = &h.comparison {
                writeln!(
                    f,
                    "host load: cpu {:.0}% mem {:.0}%  noise(min/mean/max) {:.5}/{:.5}/{:.5}  autocorr {:.4}",
                    100.0 * c.cpu_mean_utilization,
                    100.0 * c.memory_mean_utilization,
                    c.cpu_noise.min,
                    c.cpu_noise.mean,
                    c.cpu_noise.max,
                    c.cpu_autocorrelation
                )?;
            }
            if let Some(mc) = &h.cpu_masscount {
                writeln!(
                    f,
                    "cpu usage mass-count: joint {} mmdis {:.0}%",
                    mc.masscount.joint_ratio_label(),
                    mc.masscount.mm_distance
                )?;
            }
            if let Some(mc) = &h.memory_masscount {
                writeln!(
                    f,
                    "mem usage mass-count: joint {} mmdis {:.0}%",
                    mc.masscount.joint_ratio_label(),
                    mc.masscount.mm_distance
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_trace::TraceBuilder;

    #[test]
    fn empty_trace_report() {
        let trace = TraceBuilder::new("empty", 100).build().unwrap();
        let r = characterize(&trace);
        assert_eq!(r.system, "empty");
        assert!(r.workload.job_length.is_none());
        assert!(r.hostload.is_none());
        // Display must not panic.
        let text = r.to_string();
        assert!(text.contains("empty"));
    }

    #[test]
    fn report_serializes_to_json() {
        let trace = TraceBuilder::new("x", 100).build().unwrap();
        let r = characterize(&trace);
        let json = serde_json::to_string(&r).unwrap();
        let back: CharacterizationReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.system, "x");
    }
}
