//! The characterization pipeline — the paper's primary contribution as a
//! reusable library.
//!
//! Given any [`cgc_trace::Trace`] (simulated here, but the analyses are
//! format-agnostic), this crate computes every statistic of the paper:
//!
//! **Work load** (Section III, over jobs and tasks):
//! * [`workload::priority`] — the Fig. 2 priority histograms;
//! * [`workload::job_length`] — the Fig. 3 job-length CDF;
//! * [`workload::task_length`] — the Fig. 4 mass–count disparity of task
//!   execution times and the §VI headline quantiles;
//! * [`workload::submission`] — the Fig. 5 submission-interval CDF and the
//!   Table I jobs-per-hour row with Jain fairness;
//! * [`workload::utilization`] — the Fig. 6 per-job CPU and memory CDFs;
//! * [`workload::resubmission`] — the §IV.B.1 completion-event mix
//!   (59.2% abnormal on Google) and attempts-per-task CDF, exposing the
//!   crash-loop behaviour the fault model injects.
//!
//! **Host load** (Section IV, over machines):
//! * [`hostload::max_load`] — Fig. 7 maximum-load distributions per
//!   capacity class;
//! * [`hostload::queue_state`] — Fig. 8 queue timelines and the Fig. 9
//!   run-length mass–count of the running-queue state;
//! * [`hostload::usage_levels`] — Fig. 10 level-band traces and
//!   Tables II/III run-length statistics;
//! * [`hostload::usage_masscount`](mod@hostload::usage_masscount) — Figs. 11/12 usage mass–count;
//! * [`hostload::comparison`] — Fig. 13 noise/autocorrelation/CPU-vs-memory
//!   cloud–grid comparison.
//!
//! [`report::characterize`] bundles everything into one serializable
//! [`report::CharacterizationReport`]. Since the analysis-pass refactor
//! every workload analysis is an [`pass::AnalysisPass`] accumulator fed by
//! a single shared sweep over the records, host-load analyses share one
//! [`view::TraceView`] of derived products, and [`stream::characterize_stream`]
//! runs the same workload passes out-of-core over record batches without
//! materializing the trace. Per-host analyses fan out across the fleet
//! with rayon.

pub mod hostload;
pub mod pass;
pub mod predict;
pub mod report;
pub mod stream;
pub mod telemetry;
pub mod view;
pub mod workload;

pub use pass::{
    hostload_passes, hostload_passes_reference, workload_passes, AnalysisPass, PassContext,
    PassOutput,
};
pub use report::{characterize, characterize_reference, CharacterizationReport};
pub use stream::{
    characterize_batches, characterize_stream, characterize_stream_columnar, StreamOptions,
    StreamStats, StreamingCharacterizer,
};
pub use telemetry::telemetry_from_trace;
pub use view::TraceView;
