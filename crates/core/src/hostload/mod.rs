//! Host-load analyses (paper Section IV): what individual machines
//! experience while executing the workload.

pub mod comparison;
pub mod idleness;
pub mod max_load;
pub mod queue_state;
pub mod usage_levels;
pub mod usage_masscount;

pub use comparison::{
    cpu_noise, host_comparison, host_comparison_reference, mean_autocorr, mean_autocorr_all_lags,
    relative_usage_series, HostComparison, NoiseStats,
};
pub use idleness::{idleness, IdlenessReport};
pub use max_load::{max_load_distribution, ClassMaxLoad, MaxLoadDistribution};
pub use queue_state::{queue_runlengths, queue_runlengths_reference, IntervalRow, QueueRunLengths};
pub use usage_levels::{level_band_series, usage_level_runs, LevelRow, LevelRunTable};
pub use usage_masscount::{usage_masscount, usage_masscount_reference, UsageMassCount};

pub(crate) use usage_masscount::{usage_masscount_from_view, usage_masscount_from_view_reference};
