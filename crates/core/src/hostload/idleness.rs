//! Priority-relative machine idleness (paper §III.1).
//!
//! "If a machine's resource utilization is very full but over 90% of
//! execution time is attributed to tasks with low priorities, the machine
//! can still be considered quite idle w.r.t. the tasks that have
//! relatively high priorities." This module quantifies that: for each
//! priority view, the fraction of machine-samples whose usage (counting
//! only tasks at or above the view) sits below an idleness threshold —
//! i.e. how much of the fleet a task of that priority could effectively
//! claim by preemption.

use cgc_trace::usage::UsageAttribute;
use cgc_trace::{PriorityClass, Trace};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Idleness per priority view for one attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdlenessReport {
    /// The attribute measured.
    pub attribute: UsageAttribute,
    /// Relative-usage threshold below which a sample counts as idle.
    pub threshold: f64,
    /// Idle fraction counting all tasks.
    pub all_tasks: f64,
    /// Idle fraction counting only priorities above the low cluster
    /// (the paper's "relatively high priorities", > 4).
    pub above_low: f64,
    /// Idle fraction counting only the high cluster (9–12).
    pub high_only: f64,
    /// Number of samples inspected.
    pub samples: u64,
}

impl IdlenessReport {
    /// How much idleness the preemption privilege buys: idle fraction seen
    /// by a >4-priority task minus the all-tasks idle fraction.
    pub fn preemption_headroom(&self) -> f64 {
        self.above_low - self.all_tasks
    }
}

/// Computes the idleness report for one attribute.
///
/// Returns `None` when the trace has no usage samples. The paper's
/// discussion uses CPU with generous thresholds; `threshold` is relative
/// usage (0–1), e.g. 0.2 for "under one fifth of capacity".
pub fn idleness(trace: &Trace, attr: UsageAttribute, threshold: f64) -> Option<IdlenessReport> {
    assert!(
        (0.0..=1.0).contains(&threshold),
        "threshold must be in [0, 1]"
    );
    let counts: Vec<(u64, u64, u64, u64)> = trace
        .host_series
        .par_iter()
        .filter(|s| !s.is_empty())
        .map(|s| {
            let m = &trace.machines[s.machine.index()];
            let cap = match attr {
                UsageAttribute::Cpu => m.cpu_capacity,
                UsageAttribute::MemoryUsed | UsageAttribute::MemoryAssigned => m.memory_capacity,
                UsageAttribute::PageCache => m.page_cache_capacity,
            };
            let all = s.attribute(attr, None);
            let mid = s.attribute(attr, Some(PriorityClass::Middle));
            let high = s.attribute(attr, Some(PriorityClass::High));
            let mut idle_all = 0;
            let mut idle_mid = 0;
            let mut idle_high = 0;
            for i in 0..all.len() {
                if all[i] / cap < threshold {
                    idle_all += 1;
                }
                if mid[i] / cap < threshold {
                    idle_mid += 1;
                }
                if high[i] / cap < threshold {
                    idle_high += 1;
                }
            }
            (idle_all, idle_mid, idle_high, all.len() as u64)
        })
        .collect();

    let (idle_all, idle_mid, idle_high, total) = counts.into_iter().fold((0, 0, 0, 0), |a, b| {
        (a.0 + b.0, a.1 + b.1, a.2 + b.2, a.3 + b.3)
    });
    if total == 0 {
        return None;
    }
    let frac = |n: u64| n as f64 / total as f64;
    Some(IdlenessReport {
        attribute: attr,
        threshold,
        all_tasks: frac(idle_all),
        above_low: frac(idle_mid),
        high_only: frac(idle_high),
        samples: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_trace::usage::{ClassSplit, HostSeries, UsageSample};
    use cgc_trace::TraceBuilder;

    fn sample(low: f64, middle: f64, high: f64) -> UsageSample {
        UsageSample {
            cpu: ClassSplit { low, middle, high },
            ..UsageSample::default()
        }
    }

    /// One machine of capacity 1.0, four samples: saturated by low-priority
    /// work but nearly empty from the higher views.
    fn low_saturated_trace() -> Trace {
        let mut b = TraceBuilder::new("t", 1_200);
        let m = b.add_machine(1.0, 1.0, 1.0);
        let mut s = HostSeries::new(m, 0, 300);
        s.samples.push(sample(0.9, 0.05, 0.0));
        s.samples.push(sample(0.85, 0.05, 0.02));
        s.samples.push(sample(0.1, 0.0, 0.0));
        s.samples.push(sample(0.9, 0.3, 0.1));
        b.add_host_series(s);
        b.build().unwrap()
    }

    #[test]
    fn preemption_view_sees_more_idleness() {
        let r = idleness(&low_saturated_trace(), UsageAttribute::Cpu, 0.2).unwrap();
        assert_eq!(r.samples, 4);
        // All-tasks view: only sample 3 (0.1) is below 0.2.
        assert!((r.all_tasks - 0.25).abs() < 1e-12);
        // >4 view: samples 1 (0.05), 2 (0.07), 3 (0.0) idle; sample 4
        // (0.4) is not.
        assert!((r.above_low - 0.75).abs() < 1e-12);
        // High-only view: everything is idle.
        assert_eq!(r.high_only, 1.0);
        assert!((r.preemption_headroom() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn views_are_monotone_in_priority() {
        let r = idleness(&low_saturated_trace(), UsageAttribute::Cpu, 0.5).unwrap();
        assert!(r.all_tasks <= r.above_low);
        assert!(r.above_low <= r.high_only);
    }

    #[test]
    fn empty_trace_is_none() {
        let trace = TraceBuilder::new("t", 100).build().unwrap();
        assert!(idleness(&trace, UsageAttribute::Cpu, 0.2).is_none());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_rejected() {
        let _ = idleness(&low_saturated_trace(), UsageAttribute::Cpu, 1.5);
    }
}
