//! Usage mass–count disparity (paper Figs. 11 and 12).
//!
//! Pools the relative usage (percent of capacity) of every sample of every
//! machine and runs the mass–count analysis on the pooled values. The paper
//! reads off two things: mean CPU usage ≈ 35% versus memory ≈ 60% (and
//! ≈ 20% / 50% from the high-priority view), and near-uniform distributions
//! (large joint ratios ≈ 40/60, small mm-distances ≈ 13%).

use crate::view::TraceView;
use cgc_stats::{MassCount, MassCountSummary, Summary};
use cgc_trace::usage::UsageAttribute;
use cgc_trace::{PriorityClass, Trace};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Pooled usage mass–count analysis for one attribute and priority view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsageMassCount {
    /// The attribute analyzed.
    pub attribute: UsageAttribute,
    /// `None` for all tasks; `Some(c)` restricts to class `c` and above.
    pub min_class: Option<PriorityClass>,
    /// Summary of usage percentages (0–100).
    pub percent: Summary,
    /// Mass–count summary over the percentages (mm-distance in percent
    /// points).
    pub masscount: MassCountSummary,
}

/// Computes Fig. 11 (CPU) / Fig. 12 (memory) for one priority view.
///
/// Returns `None` when the trace has no samples or all usage is zero.
pub fn usage_masscount(
    trace: &Trace,
    attr: UsageAttribute,
    min_class: Option<PriorityClass>,
) -> Option<UsageMassCount> {
    let percents: Vec<f64> = trace
        .host_series
        .par_iter()
        .flat_map_iter(|s| {
            let m = &trace.machines[s.machine.index()];
            let cap = match attr {
                UsageAttribute::Cpu => m.cpu_capacity,
                UsageAttribute::MemoryUsed | UsageAttribute::MemoryAssigned => m.memory_capacity,
                UsageAttribute::PageCache => m.page_cache_capacity,
            };
            s.attribute(attr, min_class)
                .into_iter()
                .map(move |v| 100.0 * v / cap)
        })
        .collect();
    assemble(attr, min_class, percents)
}

/// The all-tasks [`usage_masscount`] over a shared [`TraceView`]: reuses
/// the view's cached raw attribute values instead of re-extracting them.
/// Series and sample order match the trace path, so the pooled vector —
/// and hence the result — is bit-identical.
pub(crate) fn usage_masscount_from_view(
    view: &TraceView<'_>,
    attr: UsageAttribute,
) -> Option<UsageMassCount> {
    let series = view.attribute_series(attr);
    let percents: Vec<f64> = series
        .values
        .iter()
        .zip(series.capacities.iter())
        .flat_map(|(values, &cap)| values.iter().map(move |&v| 100.0 * v / cap))
        .collect();
    assemble(attr, None, percents)
}

/// Finish-math shared by the trace and view paths: pooled percentages to
/// the analysis, `None` when the pool is empty or carries no mass.
fn assemble(
    attr: UsageAttribute,
    min_class: Option<PriorityClass>,
    percents: Vec<f64>,
) -> Option<UsageMassCount> {
    // One shared sort for the summary's order statistics and the
    // mass–count curves, instead of cloning the pool and sorting twice.
    let (percent, mc) = MassCount::new_with_summary(percents);
    Some(UsageMassCount {
        attribute: attr,
        min_class,
        percent,
        masscount: mc?.summary(),
    })
}

/// The pre-optimization form of [`usage_masscount`]: clones the pooled
/// percentages and sorts twice — once for the summary's order statistics,
/// once for the mass–count curves. Bit-identical to the production form —
/// kept as the benchmark's like-for-like analysis baseline and as a
/// differential oracle.
pub fn usage_masscount_reference(
    trace: &Trace,
    attr: UsageAttribute,
    min_class: Option<PriorityClass>,
) -> Option<UsageMassCount> {
    let percents: Vec<f64> = trace
        .host_series
        .par_iter()
        .flat_map_iter(|s| {
            let m = &trace.machines[s.machine.index()];
            let cap = match attr {
                UsageAttribute::Cpu => m.cpu_capacity,
                UsageAttribute::MemoryUsed | UsageAttribute::MemoryAssigned => m.memory_capacity,
                UsageAttribute::PageCache => m.page_cache_capacity,
            };
            s.attribute(attr, min_class)
                .into_iter()
                .map(move |v| 100.0 * v / cap)
        })
        .collect();
    assemble_reference(attr, min_class, percents)
}

/// Two-sort variant of [`usage_masscount_from_view`], for the reference
/// analysis registry. Pool construction is identical; only the finish-math
/// differs (and is bit-identical in result).
pub(crate) fn usage_masscount_from_view_reference(
    view: &TraceView<'_>,
    attr: UsageAttribute,
) -> Option<UsageMassCount> {
    let series = view.attribute_series(attr);
    let percents: Vec<f64> = series
        .values
        .iter()
        .zip(series.capacities.iter())
        .flat_map(|(values, &cap)| values.iter().map(move |&v| 100.0 * v / cap))
        .collect();
    assemble_reference(attr, None, percents)
}

/// Two-sort variant of [`assemble`], for the reference path.
pub(crate) fn assemble_reference(
    attr: UsageAttribute,
    min_class: Option<PriorityClass>,
    percents: Vec<f64>,
) -> Option<UsageMassCount> {
    if percents.is_empty() {
        return None;
    }
    let percent = Summary::of(&percents);
    Some(UsageMassCount {
        attribute: attr,
        min_class,
        percent,
        masscount: MassCount::new(percents)?.summary(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_trace::usage::{ClassSplit, HostSeries, UsageSample};
    use cgc_trace::TraceBuilder;

    fn sample(cpu_low: f64, cpu_high: f64, mem: f64) -> UsageSample {
        UsageSample {
            cpu: ClassSplit {
                low: cpu_low,
                middle: 0.0,
                high: cpu_high,
            },
            memory_used: ClassSplit {
                low: mem,
                middle: 0.0,
                high: 0.0,
            },
            memory_assigned: ClassSplit::ZERO,
            page_cache: 0.0,
        }
    }

    fn trace() -> Trace {
        let mut b = TraceBuilder::new("t", 900);
        let m = b.add_machine(0.5, 0.5, 1.0);
        let mut s = HostSeries::new(m, 0, 300);
        s.samples.push(sample(0.1, 0.05, 0.3)); // cpu 30%, mem 60%
        s.samples.push(sample(0.2, 0.05, 0.4)); // cpu 50%, mem 80%
        b.add_host_series(s);
        b.build().unwrap()
    }

    #[test]
    fn cpu_percentages() {
        let u = usage_masscount(&trace(), UsageAttribute::Cpu, None).unwrap();
        assert!((u.percent.mean - 40.0).abs() < 1e-9);
        assert_eq!(u.percent.count, 2);
    }

    #[test]
    fn memory_above_cpu() {
        let cpu = usage_masscount(&trace(), UsageAttribute::Cpu, None).unwrap();
        let mem = usage_masscount(&trace(), UsageAttribute::MemoryUsed, None).unwrap();
        assert!(mem.percent.mean > cpu.percent.mean);
    }

    #[test]
    fn high_priority_view_is_lower() {
        let all = usage_masscount(&trace(), UsageAttribute::Cpu, None).unwrap();
        let hi = usage_masscount(&trace(), UsageAttribute::Cpu, Some(PriorityClass::High)).unwrap();
        assert!(hi.percent.mean < all.percent.mean);
        assert!((hi.percent.mean - 10.0).abs() < 1e-9);
    }

    #[test]
    fn view_path_matches_trace_path() {
        let t = trace();
        let view = TraceView::new(&t);
        for attr in UsageAttribute::ALL {
            assert_eq!(
                usage_masscount_from_view(&view, attr),
                usage_masscount(&t, attr, None)
            );
        }
    }

    #[test]
    fn reference_form_is_bit_identical() {
        let t = trace();
        let view = TraceView::new(&t);
        for attr in UsageAttribute::ALL {
            assert_eq!(
                usage_masscount_reference(&t, attr, None),
                usage_masscount(&t, attr, None)
            );
            assert_eq!(
                usage_masscount_from_view_reference(&view, attr),
                usage_masscount_from_view(&view, attr)
            );
        }
        assert_eq!(
            usage_masscount_reference(&t, UsageAttribute::Cpu, Some(PriorityClass::High)),
            usage_masscount(&t, UsageAttribute::Cpu, Some(PriorityClass::High))
        );
    }

    #[test]
    fn none_for_zero_usage() {
        let mut b = TraceBuilder::new("t", 900);
        let m = b.add_machine(0.5, 0.5, 1.0);
        let mut s = HostSeries::new(m, 0, 300);
        s.samples.push(sample(0.0, 0.0, 0.0));
        b.add_host_series(s);
        let trace = b.build().unwrap();
        assert!(usage_masscount(&trace, UsageAttribute::Cpu, None).is_none());
    }

    #[test]
    fn none_without_samples() {
        let trace = TraceBuilder::new("t", 900).build().unwrap();
        assert!(usage_masscount(&trace, UsageAttribute::Cpu, None).is_none());
    }
}
