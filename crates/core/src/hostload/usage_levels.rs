//! Usage-level band analysis (paper Fig. 10 and Tables II/III).
//!
//! Relative usage (attribute value over machine capacity) is quantized into
//! five bands `[0,0.2) … [0.8,1]`. Two products:
//!
//! * **level-band series** (Fig. 10): the band of each sampled machine over
//!   time, for a random machine subset — the paper's colour-stripe plots;
//! * **run-length tables** (Tables II/III): for each band, the average and
//!   maximum time usage stays in that band, plus the mass–count joint ratio
//!   and mm-distance of those durations. The paper finds CPU dwelling ≈ 6
//!   minutes per band (30/70 joint ratio) versus memory's slower 9–10
//!   minutes (20/80) — CPU load changes much faster.

use crate::view::TraceView;
use cgc_stats::{durations_by_level, LevelQuantizer, MassCount, MassCountSummary, Summary};
use cgc_trace::usage::{HostSeries, UsageAttribute};
use cgc_trace::{MachineId, PriorityClass, Trace};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One row of Table II/III: run-length statistics of one usage band.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelRow {
    /// Band label, e.g. `[0.2,0.4]`.
    pub label: String,
    /// Number of runs across all machines.
    pub runs: usize,
    /// Run-duration summary, in minutes.
    pub duration_minutes: Summary,
    /// Mass–count summary (mm-distance in minutes); `None` if the band
    /// never occurred.
    pub masscount: Option<MassCountSummary>,
}

/// A full Table II/III: five band rows for one attribute and priority view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelRunTable {
    /// The attribute analyzed.
    pub attribute: UsageAttribute,
    /// `None` for all tasks; `Some(c)` restricts to tasks at or above `c`.
    pub min_class: Option<PriorityClass>,
    /// One row per band.
    pub rows: Vec<LevelRow>,
}

fn relative_series(
    trace: &Trace,
    series: &HostSeries,
    attr: UsageAttribute,
    min_class: Option<PriorityClass>,
) -> Vec<f64> {
    let m = &trace.machines[series.machine.index()];
    let cap = match attr {
        UsageAttribute::Cpu => m.cpu_capacity,
        UsageAttribute::MemoryUsed | UsageAttribute::MemoryAssigned => m.memory_capacity,
        UsageAttribute::PageCache => m.page_cache_capacity,
    };
    series
        .attribute(attr, min_class)
        .into_iter()
        .map(|v| v / cap)
        .collect()
}

/// Computes a Table II/III for one attribute and priority view.
pub fn usage_level_runs(
    trace: &Trace,
    attr: UsageAttribute,
    min_class: Option<PriorityClass>,
) -> LevelRunTable {
    let quantizer = LevelQuantizer::usage_bands();
    let levels = quantizer.num_levels();

    let per_machine: Vec<Vec<Vec<f64>>> = trace
        .host_series
        .par_iter()
        .filter(|s| !s.is_empty())
        .map(|s| {
            let rel = relative_series(trace, s, attr, min_class);
            let quantized = quantizer.quantize_series(&rel);
            let minutes = s.period as f64 / 60.0;
            durations_by_level(&quantized, minutes, levels)
        })
        .collect();

    table_from_runs(attr, min_class, &quantizer, per_machine)
}

/// The all-tasks [`usage_level_runs`] over a shared [`TraceView`]: the
/// relative series come from the view's cached raw values and capacities.
/// Machine order matches the trace path, so the result is bit-identical.
pub(crate) fn usage_level_runs_from_view(
    view: &TraceView<'_>,
    attr: UsageAttribute,
) -> LevelRunTable {
    let quantizer = LevelQuantizer::usage_bands();
    let levels = quantizer.num_levels();
    let series = view.attribute_series(attr);

    let per_machine: Vec<Vec<Vec<f64>>> = series
        .values
        .iter()
        .zip(series.capacities.iter().zip(series.periods.iter()))
        .map(|(values, (&cap, &period))| {
            let rel: Vec<f64> = values.iter().map(|&v| v / cap).collect();
            let quantized = quantizer.quantize_series(&rel);
            durations_by_level(&quantized, period as f64 / 60.0, levels)
        })
        .collect();

    table_from_runs(attr, None, &quantizer, per_machine)
}

/// Row aggregation shared by the trace and view paths: per-machine,
/// per-band run durations to the five Table II/III rows.
fn table_from_runs(
    attr: UsageAttribute,
    min_class: Option<PriorityClass>,
    quantizer: &LevelQuantizer,
    per_machine: Vec<Vec<Vec<f64>>>,
) -> LevelRunTable {
    let rows = (0..quantizer.num_levels())
        .map(|level| {
            let durations: Vec<f64> = per_machine
                .iter()
                .flat_map(|m| m[level].iter().copied())
                .collect();
            let runs = durations.len();
            let (duration_minutes, mc) = MassCount::new_with_summary(durations);
            LevelRow {
                label: quantizer.label(level),
                runs,
                duration_minutes,
                masscount: mc.map(|mc| mc.summary()),
            }
        })
        .collect();

    LevelRunTable {
        attribute: attr,
        min_class,
        rows,
    }
}

/// The pre-optimization form of [`usage_level_runs_from_view`]: each row
/// summarizes its durations with two independent sorts (one for the
/// duration summary, one for the mass–count curves) instead of sharing a
/// single sort. Bit-identical to the production form — kept as the
/// benchmark's like-for-like analysis baseline and as a differential
/// oracle.
pub(crate) fn usage_level_runs_from_view_reference(
    view: &TraceView<'_>,
    attr: UsageAttribute,
) -> LevelRunTable {
    let quantizer = LevelQuantizer::usage_bands();
    let levels = quantizer.num_levels();
    let series = view.attribute_series(attr);

    let per_machine: Vec<Vec<Vec<f64>>> = series
        .values
        .iter()
        .zip(series.capacities.iter().zip(series.periods.iter()))
        .map(|(values, (&cap, &period))| {
            let rel: Vec<f64> = values.iter().map(|&v| v / cap).collect();
            let quantized = quantizer.quantize_series(&rel);
            durations_by_level(&quantized, period as f64 / 60.0, levels)
        })
        .collect();

    table_from_runs_reference(attr, None, &quantizer, per_machine)
}

/// Two-sort variant of [`table_from_runs`], for the reference path.
fn table_from_runs_reference(
    attr: UsageAttribute,
    min_class: Option<PriorityClass>,
    quantizer: &LevelQuantizer,
    per_machine: Vec<Vec<Vec<f64>>>,
) -> LevelRunTable {
    let rows = (0..quantizer.num_levels())
        .map(|level| {
            let durations: Vec<f64> = per_machine
                .iter()
                .flat_map(|m| m[level].iter().copied())
                .collect();
            LevelRow {
                label: quantizer.label(level),
                runs: durations.len(),
                duration_minutes: Summary::of(&durations),
                masscount: MassCount::new(durations).map(|mc| mc.summary()),
            }
        })
        .collect();

    LevelRunTable {
        attribute: attr,
        min_class,
        rows,
    }
}

/// Fig. 10: the quantized band of each selected machine at every sample.
///
/// Returns `(machine, band_series)` pairs in the order requested; machines
/// without samples are skipped.
pub fn level_band_series(
    trace: &Trace,
    attr: UsageAttribute,
    min_class: Option<PriorityClass>,
    machines: &[MachineId],
) -> Vec<(MachineId, Vec<usize>)> {
    let quantizer = LevelQuantizer::usage_bands();
    machines
        .iter()
        .filter_map(|&id| {
            let series = trace.series_for(id)?;
            if series.is_empty() {
                return None;
            }
            let rel = relative_series(trace, series, attr, min_class);
            Some((id, quantizer.quantize_series(&rel)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_trace::usage::{ClassSplit, UsageSample};
    use cgc_trace::TraceBuilder;

    fn sample(cpu_low: f64, cpu_high: f64) -> UsageSample {
        UsageSample {
            cpu: ClassSplit {
                low: cpu_low,
                middle: 0.0,
                high: cpu_high,
            },
            memory_used: ClassSplit {
                low: 0.3,
                middle: 0.0,
                high: 0.0,
            },
            memory_assigned: ClassSplit::ZERO,
            page_cache: 0.0,
        }
    }

    /// Machine of CPU capacity 0.5; relative CPU alternates between bands.
    fn banded_trace() -> Trace {
        let mut b = TraceBuilder::new("t", 3_000);
        let m = b.add_machine(0.5, 0.5, 1.0);
        let mut s = HostSeries::new(m, 0, 300);
        // Relative usage: 0.1/0.5 = 0.2 (band 1) × 4, then
        // (0.4 + 0.05)/0.5 = 0.9 (band 4) × 2, then band 1 × 4.
        for _ in 0..4 {
            s.samples.push(sample(0.1, 0.0));
        }
        for _ in 0..2 {
            s.samples.push(sample(0.4, 0.05));
        }
        for _ in 0..4 {
            s.samples.push(sample(0.1, 0.0));
        }
        b.add_host_series(s);
        b.build().unwrap()
    }

    #[test]
    fn run_table_counts_bands() {
        let t = usage_level_runs(&banded_trace(), UsageAttribute::Cpu, None);
        assert_eq!(t.rows.len(), 5);
        // Band 1 ([0.2,0.4)): two runs of 4 samples = 20 minutes each.
        assert_eq!(t.rows[1].runs, 2);
        assert!((t.rows[1].duration_minutes.mean - 20.0).abs() < 1e-9);
        // Band 4 ([0.8,1.0]): one run of 2 samples = 10 minutes.
        assert_eq!(t.rows[4].runs, 1);
        assert!((t.rows[4].duration_minutes.mean - 10.0).abs() < 1e-9);
        // Unvisited bands have no mass-count.
        assert!(t.rows[0].masscount.is_none());
    }

    #[test]
    fn high_priority_view_differs() {
        let trace = banded_trace();
        let all = usage_level_runs(&trace, UsageAttribute::Cpu, None);
        let high = usage_level_runs(&trace, UsageAttribute::Cpu, Some(PriorityClass::High));
        // From the high-priority view the middle samples are 0.05/0.5=0.1
        // (band 0), the rest 0 (band 0) — a single band-0 run.
        assert_eq!(high.rows[0].runs, 1);
        assert_ne!(all.rows[0].runs, high.rows[0].runs);
    }

    #[test]
    fn view_path_matches_trace_path() {
        let trace = banded_trace();
        let view = TraceView::new(&trace);
        for attr in UsageAttribute::ALL {
            assert_eq!(
                usage_level_runs_from_view(&view, attr),
                usage_level_runs(&trace, attr, None)
            );
        }
    }

    #[test]
    fn reference_form_is_bit_identical() {
        let trace = banded_trace();
        let view = TraceView::new(&trace);
        for attr in UsageAttribute::ALL {
            assert_eq!(
                usage_level_runs_from_view_reference(&view, attr),
                usage_level_runs_from_view(&view, attr)
            );
        }
    }

    #[test]
    fn band_series_quantizes_relative_usage() {
        let trace = banded_trace();
        let bands = level_band_series(&trace, UsageAttribute::Cpu, None, &[MachineId(0)]);
        assert_eq!(bands.len(), 1);
        let (_, series) = &bands[0];
        assert_eq!(series[0], 1);
        assert_eq!(series[4], 4);
        assert_eq!(series[9], 1);
    }

    #[test]
    fn missing_machines_skipped() {
        let trace = banded_trace();
        let bands = level_band_series(&trace, UsageAttribute::Cpu, None, &[MachineId(7)]);
        assert!(bands.is_empty());
    }

    #[test]
    fn memory_attribute_uses_memory_capacity() {
        let t = usage_level_runs(&banded_trace(), UsageAttribute::MemoryUsed, None);
        // Memory 0.3 / cap 0.5 = 0.6 -> band 3 for all 10 samples.
        assert_eq!(t.rows[3].runs, 1);
        assert!((t.rows[3].duration_minutes.max - 50.0).abs() < 1e-9);
    }
}
