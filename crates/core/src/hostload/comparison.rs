//! Cloud-versus-grid host-load comparison (paper Fig. 13).
//!
//! Three quantitative contrasts, computed per trace so any two systems can
//! be compared:
//!
//! * **CPU vs memory**: grids are compute-bound (CPU usage above memory),
//!   the cloud is the opposite;
//! * **noise**: the standard deviation of what a mean filter removes from
//!   each machine's CPU-load series — the paper reports Google ≈ 20× the
//!   grids on average;
//! * **autocorrelation**: mean lag autocorrelation of CPU load — near zero
//!   (even slightly negative) for Google, clearly positive for grids, i.e.
//!   grid load is predictable and cloud load is not.

use cgc_stats::{mean_autocorrelation, mean_autocorrelation_reference, noise_std};
use cgc_trace::usage::UsageAttribute;
use cgc_trace::Trace;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Fleet-level noise statistics (per-machine noise std aggregated).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseStats {
    /// Smallest per-machine noise.
    pub min: f64,
    /// Mean per-machine noise.
    pub mean: f64,
    /// Largest per-machine noise.
    pub max: f64,
}

/// Window (in samples) of the mean filter used for noise extraction;
/// 12 five-minute samples ≈ one hour, separating trend from churn.
pub const NOISE_FILTER_WINDOW: usize = 12;

/// Maximum lag (in samples) over which autocorrelation is averaged.
pub const AUTOCORR_MAX_LAG: usize = 12;

/// Noise of one attribute across the fleet. Returns `None` when no machine
/// has samples.
///
/// `skip` drops that many leading samples per machine: simulations start
/// from an empty cluster, and the fill-up step would otherwise dominate
/// the residual (the real trace starts mid-operation).
pub fn cpu_noise(
    trace: &Trace,
    attr: UsageAttribute,
    window: usize,
    skip: usize,
) -> Option<NoiseStats> {
    let per_machine: Vec<f64> = trace
        .host_series
        .par_iter()
        .filter(|s| s.len() >= skip + 2)
        .map(|s| noise_std(&s.attribute(attr, None)[skip..], window))
        .collect();
    if per_machine.is_empty() {
        return None;
    }
    let min = per_machine.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_machine
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let mean = per_machine.iter().sum::<f64>() / per_machine.len() as f64;
    Some(NoiseStats { min, mean, max })
}

/// Mean autocorrelation of an attribute across the fleet (mean over
/// machines of the mean over lags `1..=max_lag`).
pub fn mean_autocorr(trace: &Trace, attr: UsageAttribute, max_lag: usize) -> Option<f64> {
    let per_machine: Vec<f64> = trace
        .host_series
        .par_iter()
        .filter(|s| s.len() > max_lag + 1)
        .map(|s| mean_autocorrelation(&s.attribute(attr, None), max_lag))
        .collect();
    if per_machine.is_empty() {
        return None;
    }
    Some(per_machine.iter().sum::<f64>() / per_machine.len() as f64)
}

/// Mean autocorrelation over *all* available lags, the paper's Fig. 13
/// aggregate (≈ −8·10⁻⁶ for Google).
///
/// For any series the sample autocovariances about the mean sum to
/// approximately −var/2, so a memoryless series averages slightly below
/// zero, while long-range trends (grid diurnal load) push it positive —
/// exactly the contrast the paper reads off.
pub fn mean_autocorr_all_lags(trace: &Trace, attr: UsageAttribute, skip: usize) -> Option<f64> {
    mean_autocorr_all_lags_with(trace, attr, skip, mean_autocorrelation)
}

/// [`mean_autocorr_all_lags`] with a caller-chosen per-series scalar:
/// the hoisted production form, or the per-lag reference form the
/// benchmark baseline uses. Both are bit-identical in result.
fn mean_autocorr_all_lags_with(
    trace: &Trace,
    attr: UsageAttribute,
    skip: usize,
    mean_autocorr_fn: fn(&[f64], usize) -> f64,
) -> Option<f64> {
    let per_machine: Vec<f64> = trace
        .host_series
        .par_iter()
        .filter(|s| s.len() >= skip + 4)
        .map(|s| {
            let series = &s.attribute(attr, None)[skip..];
            mean_autocorr_fn(series, series.len() - 2)
        })
        .collect();
    if per_machine.is_empty() {
        return None;
    }
    Some(per_machine.iter().sum::<f64>() / per_machine.len() as f64)
}

/// The Fig. 13 headline numbers for one system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostComparison {
    /// System label.
    pub system: String,
    /// Mean CPU usage relative to capacity.
    pub cpu_mean_utilization: f64,
    /// Mean memory usage relative to capacity.
    pub memory_mean_utilization: f64,
    /// CPU-load noise statistics.
    pub cpu_noise: NoiseStats,
    /// Mean CPU-load autocorrelation over all lags (the paper's
    /// aggregate; near zero for the cloud, positive for grids).
    pub cpu_autocorrelation: f64,
}

/// Computes the host-load comparison summary of one trace, discarding
/// `skip` leading warm-up samples per machine. Returns `None` if the
/// trace has no usable host series.
pub fn host_comparison(trace: &Trace, skip: usize) -> Option<HostComparison> {
    host_comparison_with(trace, skip, mean_autocorrelation)
}

/// The pre-optimization form of [`host_comparison`]: the autocorrelation
/// aggregate re-derives the series mean and variance at every lag instead
/// of hoisting them. Bit-identical to the production form — kept as the
/// benchmark's like-for-like analysis baseline and as a differential
/// oracle.
pub fn host_comparison_reference(trace: &Trace, skip: usize) -> Option<HostComparison> {
    host_comparison_with(trace, skip, mean_autocorrelation_reference)
}

fn host_comparison_with(
    trace: &Trace,
    skip: usize,
    mean_autocorr_fn: fn(&[f64], usize) -> f64,
) -> Option<HostComparison> {
    let mut cpu_sum = 0.0;
    let mut mem_sum = 0.0;
    let mut n = 0u64;
    for s in &trace.host_series {
        let m = &trace.machines[s.machine.index()];
        for sample in s.samples.iter().skip(skip) {
            cpu_sum += sample.cpu.total() / m.cpu_capacity;
            mem_sum += sample.memory_used.total() / m.memory_capacity;
            n += 1;
        }
    }
    if n == 0 {
        return None;
    }
    Some(HostComparison {
        system: trace.system.clone(),
        cpu_mean_utilization: cpu_sum / n as f64,
        memory_mean_utilization: mem_sum / n as f64,
        cpu_noise: cpu_noise(trace, UsageAttribute::Cpu, NOISE_FILTER_WINDOW, skip)?,
        // Series shorter than the lag window carry no autocorrelation
        // information; report 0 rather than dropping the whole comparison.
        cpu_autocorrelation: mean_autocorr_all_lags_with(
            trace,
            UsageAttribute::Cpu,
            skip,
            mean_autocorr_fn,
        )
        .unwrap_or(0.0),
    })
}

/// Relative `(cpu, memory)` series of one machine for Fig. 13 plotting.
pub fn relative_usage_series(
    trace: &Trace,
    machine: cgc_trace::MachineId,
) -> Option<(Vec<f64>, Vec<f64>)> {
    let s = trace.series_for(machine)?;
    let m = &trace.machines[machine.index()];
    let cpu = s
        .attribute(UsageAttribute::Cpu, None)
        .into_iter()
        .map(|v| v / m.cpu_capacity)
        .collect();
    let mem = s
        .attribute(UsageAttribute::MemoryUsed, None)
        .into_iter()
        .map(|v| v / m.memory_capacity)
        .collect();
    Some((cpu, mem))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_trace::usage::{ClassSplit, HostSeries, UsageSample};
    use cgc_trace::{MachineId, TraceBuilder};

    fn sample(cpu: f64, mem: f64) -> UsageSample {
        UsageSample {
            cpu: ClassSplit {
                low: cpu,
                middle: 0.0,
                high: 0.0,
            },
            memory_used: ClassSplit {
                low: mem,
                middle: 0.0,
                high: 0.0,
            },
            memory_assigned: ClassSplit::ZERO,
            page_cache: 0.0,
        }
    }

    fn trace_from_series(cpu: &[f64], mem: &[f64]) -> Trace {
        let mut b = TraceBuilder::new("t", cpu.len() as u64 * 300);
        let m = b.add_machine(1.0, 1.0, 1.0);
        let mut s = HostSeries::new(m, 0, 300);
        for (&c, &u) in cpu.iter().zip(mem) {
            s.samples.push(sample(c, u));
        }
        b.add_host_series(s);
        b.build().unwrap()
    }

    #[test]
    fn noisy_series_scores_higher() {
        let noisy: Vec<f64> = (0..200)
            .map(|i| 0.4 + 0.3 * ((i % 2) as f64 - 0.5))
            .collect();
        let calm = vec![0.4; 200];
        let mem = vec![0.5; 200];
        let n_noisy = host_comparison(&trace_from_series(&noisy, &mem), 0).unwrap();
        let n_calm = host_comparison(&trace_from_series(&calm, &mem), 0).unwrap();
        assert!(n_noisy.cpu_noise.mean > 20.0 * n_calm.cpu_noise.mean.max(1e-12));
    }

    #[test]
    fn mean_utilizations() {
        let c = host_comparison(&trace_from_series(&[0.2, 0.4], &[0.6, 0.8]), 0).unwrap();
        assert!((c.cpu_mean_utilization - 0.3).abs() < 1e-9);
        assert!((c.memory_mean_utilization - 0.7).abs() < 1e-9);
    }

    #[test]
    fn autocorrelation_sign() {
        // Over *all* lags the sample autocovariances sum to ≈ −var/2, so
        // any series averages to nearly zero — the paper's −8·10⁻⁶-scale
        // aggregate. The short-lag helper is what separates trend from
        // churn.
        let trend: Vec<f64> = (0..400).map(|i| i as f64 / 400.0).collect();
        let churn: Vec<f64> = (0..400)
            .map(|i| if i % 2 == 0 { 0.2 } else { 0.8 })
            .collect();
        let mem = vec![0.5; 400];
        let t = host_comparison(&trace_from_series(&trend, &mem), 0).unwrap();
        let c = host_comparison(&trace_from_series(&churn, &mem), 0).unwrap();
        assert!(
            t.cpu_autocorrelation.abs() < 0.01,
            "trend r={}",
            t.cpu_autocorrelation
        );
        assert!(
            c.cpu_autocorrelation.abs() < 0.01,
            "churn r={}",
            c.cpu_autocorrelation
        );
        // ... but the trend's all-lags mean still exceeds the churn's.
        assert!(t.cpu_autocorrelation > c.cpu_autocorrelation);
        let trend_trace = trace_from_series(&trend, &mem);
        let churn_trace = trace_from_series(&churn, &mem);
        assert!(mean_autocorr(&trend_trace, UsageAttribute::Cpu, 5).unwrap() > 0.9);
        assert!(mean_autocorr(&churn_trace, UsageAttribute::Cpu, 5).unwrap() < 0.0);
    }

    #[test]
    fn reference_form_is_bit_identical() {
        let cpu: Vec<f64> = (0..120)
            .map(|i| 0.3 + 0.2 * ((i * 7 % 13) as f64 / 13.0))
            .collect();
        let mem: Vec<f64> = (0..120)
            .map(|i| 0.5 + 0.1 * ((i % 5) as f64 / 5.0))
            .collect();
        let trace = trace_from_series(&cpu, &mem);
        for skip in [0, 3] {
            let fast = host_comparison(&trace, skip).unwrap();
            let reference = host_comparison_reference(&trace, skip).unwrap();
            assert_eq!(
                fast.cpu_autocorrelation.to_bits(),
                reference.cpu_autocorrelation.to_bits()
            );
            assert_eq!(fast, reference);
        }
    }

    #[test]
    fn none_without_samples() {
        let trace = TraceBuilder::new("t", 100).build().unwrap();
        assert!(host_comparison(&trace, 0).is_none());
        assert!(cpu_noise(&trace, UsageAttribute::Cpu, 5, 0).is_none());
        assert!(mean_autocorr(&trace, UsageAttribute::Cpu, 5).is_none());
    }

    #[test]
    fn relative_series_normalizes_by_capacity() {
        let mut b = TraceBuilder::new("t", 600);
        let m = b.add_machine(0.5, 0.25, 1.0);
        let mut s = HostSeries::new(m, 0, 300);
        s.samples.push(sample(0.25, 0.2));
        b.add_host_series(s);
        let trace = b.build().unwrap();
        let (cpu, mem) = relative_usage_series(&trace, MachineId(0)).unwrap();
        assert!((cpu[0] - 0.5).abs() < 1e-9);
        assert!((mem[0] - 0.8).abs() < 1e-9);
        assert!(relative_usage_series(&trace, MachineId(3)).is_none());
    }
}
