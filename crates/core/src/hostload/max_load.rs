//! Maximum host load per capacity class (paper Fig. 7).
//!
//! For every machine, take the maximum of an attribute over the whole
//! trace — the paper's estimate of *usable* capacity (user-space capacity
//! sits below nominal because of kernel overheads) — then histogram those
//! maxima per capacity class. The paper finds CPU maxima hugging the
//! nominal capacities, consumed-memory maxima around 80% of capacity, and
//! assigned-memory maxima around 90%.

use crate::view::{capacity_for, TraceView};
use cgc_stats::Histogram;
use cgc_trace::usage::UsageAttribute;
use cgc_trace::{MachineRecord, Trace, CPU_CAPACITY_CLASSES, MEMORY_CAPACITY_CLASSES};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Maximum-load statistics for machines of one capacity class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassMaxLoad {
    /// Nominal capacity of the class (the Fig. 7 dotted line).
    pub capacity: f64,
    /// Number of machines in the class.
    pub machines: usize,
    /// Histogram of the per-machine maxima over `[0, 1]`.
    pub histogram: Histogram,
    /// Mean of max/capacity across the class (the "how close to nominal"
    /// figure: ≈ 1.0 for CPU, ≈ 0.8 for consumed memory in the paper).
    pub mean_relative_max: f64,
}

/// Fig. 7 for one attribute: per-class maximum-load distributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaxLoadDistribution {
    /// The attribute analyzed.
    pub attribute: UsageAttribute,
    /// Per-class statistics, ascending by capacity.
    pub classes: Vec<ClassMaxLoad>,
}

fn classes_for(attr: UsageAttribute) -> Vec<f64> {
    match attr {
        UsageAttribute::Cpu => CPU_CAPACITY_CLASSES.to_vec(),
        UsageAttribute::MemoryUsed | UsageAttribute::MemoryAssigned => {
            MEMORY_CAPACITY_CLASSES.to_vec()
        }
        UsageAttribute::PageCache => vec![1.0],
    }
}

/// Computes the Fig. 7 distribution for one attribute.
///
/// Machines without a usage series are skipped. Histogram resolution is
/// `bins` buckets over the normalized `[0, 1]` axis.
pub fn max_load_distribution(
    trace: &Trace,
    attr: UsageAttribute,
    bins: usize,
) -> MaxLoadDistribution {
    let class_caps = classes_for(attr);
    // (class index, max value, relative max) per machine, in parallel: the
    // max scan touches every sample of every machine.
    let per_machine: Vec<(usize, f64, f64)> = trace
        .host_series
        .par_iter()
        .filter(|s| !s.is_empty())
        .map(|s| {
            let m = &trace.machines[s.machine.index()];
            let cap = capacity_for(m, attr);
            let class = MachineRecord::capacity_class(cap, &class_caps);
            let max = s.max_attribute(attr);
            (class, max, max / cap)
        })
        .collect();

    group_per_machine(attr, &class_caps, &per_machine, bins)
}

/// [`max_load_distribution`] over a shared [`TraceView`]: reuses the
/// view's cached per-machine capacities and peaks instead of re-scanning
/// every sample. Machine order matches the trace path, so the result is
/// bit-identical.
pub(crate) fn max_load_from_view(
    view: &TraceView<'_>,
    attr: UsageAttribute,
    bins: usize,
) -> MaxLoadDistribution {
    let class_caps = classes_for(attr);
    let series = view.attribute_series(attr);
    let per_machine: Vec<(usize, f64, f64)> = series
        .capacities
        .iter()
        .zip(series.peaks.iter())
        .map(|(&cap, &max)| {
            let class = MachineRecord::capacity_class(cap, &class_caps);
            (class, max, max / cap)
        })
        .collect();

    group_per_machine(attr, &class_caps, &per_machine, bins)
}

/// Histogramming shared by the trace and view paths: groups per-machine
/// `(class, max, relative max)` rows into per-class statistics.
fn group_per_machine(
    attr: UsageAttribute,
    class_caps: &[f64],
    per_machine: &[(usize, f64, f64)],
    bins: usize,
) -> MaxLoadDistribution {
    let classes = class_caps
        .iter()
        .enumerate()
        .map(|(ci, &capacity)| {
            let members: Vec<&(usize, f64, f64)> =
                per_machine.iter().filter(|(c, _, _)| *c == ci).collect();
            let mut histogram = Histogram::new(0.0, 1.0, bins);
            let mut rel_sum = 0.0;
            for (_, max, rel) in members.iter().copied() {
                histogram.add(*max);
                rel_sum += rel;
            }
            ClassMaxLoad {
                capacity,
                machines: members.len(),
                mean_relative_max: if members.is_empty() {
                    0.0
                } else {
                    rel_sum / members.len() as f64
                },
                histogram,
            }
        })
        .collect();

    MaxLoadDistribution {
        attribute: attr,
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_trace::usage::{ClassSplit, HostSeries, UsageSample};
    use cgc_trace::TraceBuilder;

    fn sample(cpu: f64, mem: f64) -> UsageSample {
        UsageSample {
            cpu: ClassSplit {
                low: cpu,
                middle: 0.0,
                high: 0.0,
            },
            memory_used: ClassSplit {
                low: mem,
                middle: 0.0,
                high: 0.0,
            },
            memory_assigned: ClassSplit {
                low: mem * 1.1,
                middle: 0.0,
                high: 0.0,
            },
            page_cache: 0.3,
        }
    }

    fn trace_two_classes() -> Trace {
        let mut b = TraceBuilder::new("t", 900);
        let m0 = b.add_machine(0.5, 0.5, 1.0);
        let m1 = b.add_machine(1.0, 0.75, 1.0);
        let mut s0 = HostSeries::new(m0, 0, 300);
        s0.samples
            .extend([sample(0.2, 0.3), sample(0.45, 0.35), sample(0.1, 0.2)]);
        let mut s1 = HostSeries::new(m1, 0, 300);
        s1.samples.extend([sample(0.9, 0.6), sample(0.5, 0.5)]);
        b.add_host_series(s0);
        b.add_host_series(s1);
        b.build().unwrap()
    }

    #[test]
    fn cpu_classes_grouped() {
        let d = max_load_distribution(&trace_two_classes(), UsageAttribute::Cpu, 10);
        assert_eq!(d.classes.len(), 3);
        // Class 0.25 empty; 0.5 has machine 0 (max 0.45); 1.0 has machine 1
        // (max 0.9).
        assert_eq!(d.classes[0].machines, 0);
        assert_eq!(d.classes[1].machines, 1);
        assert!((d.classes[1].mean_relative_max - 0.9).abs() < 1e-9);
        assert_eq!(d.classes[2].machines, 1);
        assert!((d.classes[2].mean_relative_max - 0.9).abs() < 1e-9);
    }

    #[test]
    fn memory_uses_memory_classes() {
        let d = max_load_distribution(&trace_two_classes(), UsageAttribute::MemoryUsed, 10);
        assert_eq!(d.classes.len(), 4);
        // Machine 0 (cap 0.5) max mem 0.35 -> class 0.5; machine 1
        // (cap 0.75) max 0.6 -> class 0.75.
        assert_eq!(d.classes[1].machines, 1);
        assert!((d.classes[1].mean_relative_max - 0.7).abs() < 1e-9);
        assert_eq!(d.classes[2].machines, 1);
        assert!((d.classes[2].mean_relative_max - 0.8).abs() < 1e-9);
    }

    #[test]
    fn page_cache_single_class() {
        let d = max_load_distribution(&trace_two_classes(), UsageAttribute::PageCache, 10);
        assert_eq!(d.classes.len(), 1);
        assert_eq!(d.classes[0].machines, 2);
        assert!((d.classes[0].mean_relative_max - 0.3).abs() < 1e-9);
    }

    #[test]
    fn histogram_totals_match_machines() {
        let d = max_load_distribution(&trace_two_classes(), UsageAttribute::Cpu, 5);
        let total: u64 = d.classes.iter().map(|c| c.histogram.total()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn view_path_matches_trace_path() {
        let trace = trace_two_classes();
        let view = TraceView::new(&trace);
        for attr in UsageAttribute::ALL {
            assert_eq!(
                max_load_from_view(&view, attr, 10),
                max_load_distribution(&trace, attr, 10)
            );
        }
    }

    #[test]
    fn machines_without_series_skipped() {
        let mut b = TraceBuilder::new("t", 900);
        b.add_machine(0.5, 0.5, 1.0);
        let trace = b.build().unwrap();
        let d = max_load_distribution(&trace, UsageAttribute::Cpu, 5);
        assert!(d.classes.iter().all(|c| c.machines == 0));
    }
}
