//! Running-queue run-length analysis (paper Figs. 8 and 9).
//!
//! Fig. 8's per-machine queue timeline is provided directly by
//! [`cgc_trace::QueueTimeline`]; this module adds the Fig. 9 aggregation:
//! sample every machine's running-task count, quantize it into the paper's
//! intervals (`[0,9]`, `[10,19]`, …, `[50,+)`), collect the durations over which
//! the interval stays unchanged, and summarize each interval's durations by
//! mass–count disparity. The paper observes joint ratios near 10/90 —
//! most unchanged-state spells are short — with the busiest interval
//! changing fastest.

use cgc_stats::{durations_by_level, LevelQuantizer, MassCount, MassCountSummary, Summary};
use cgc_trace::{Duration, QueueTimeline, Trace};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Mass–count of unchanged-queue-state durations for one interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalRow {
    /// Interval label, e.g. `[10,19]`.
    pub label: String,
    /// Number of runs observed in this interval across all machines.
    pub runs: usize,
    /// Scalar summary of run durations, in minutes.
    pub duration_minutes: Summary,
    /// Mass–count summary of the durations (mm-distance in minutes);
    /// `None` if the interval never occurred.
    pub masscount: Option<MassCountSummary>,
}

/// Fig. 9: one row per running-count interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueRunLengths {
    /// Sampling period used, in seconds.
    pub period: Duration,
    /// One row per interval of the quantizer.
    pub intervals: Vec<IntervalRow>,
}

/// Computes Fig. 9 from all machines of a trace.
///
/// `period` is the resolution at which the running-queue step functions are
/// sampled (60 s reproduces the paper's minute-scale durations).
pub fn queue_runlengths(trace: &Trace, period: Duration) -> QueueRunLengths {
    let quantizer = LevelQuantizer::queue_intervals();
    let levels = quantizer.num_levels();
    let minutes = period as f64 / 60.0;

    // One sweep reconstructs every machine's timeline (O(events), vs the
    // old per-machine replay's O(events × machines)); sampling and
    // run-length extraction still parallelize over machines.
    let timelines = QueueTimeline::for_all_machines(trace);
    let per_machine: Vec<Vec<Vec<f64>>> = timelines
        .par_iter()
        .map(|timeline| {
            let series = timeline.running_series(trace.horizon, period);
            let quantized: Vec<usize> = series
                .iter()
                .map(|&c| quantizer.quantize_count(c))
                .collect();
            durations_by_level(&quantized, minutes, levels)
        })
        .collect();

    let intervals = (0..levels)
        .map(|level| {
            let durations: Vec<f64> = per_machine
                .iter()
                .flat_map(|m| m[level].iter().copied())
                .collect();
            let runs = durations.len();
            let (duration_minutes, mc) = MassCount::new_with_summary(durations);
            IntervalRow {
                label: quantizer.label(level),
                runs,
                duration_minutes,
                masscount: mc.map(|mc| mc.summary()),
            }
        })
        .collect();

    QueueRunLengths { period, intervals }
}

/// The pre-optimization form of [`queue_runlengths`]: replays the event
/// stream once per machine (O(events × machines)) and summarizes each
/// interval's durations with two independent sorts instead of one shared
/// sort. Bit-identical to the production form — kept as the benchmark's
/// like-for-like analysis baseline and as a differential oracle.
pub fn queue_runlengths_reference(trace: &Trace, period: Duration) -> QueueRunLengths {
    let quantizer = LevelQuantizer::queue_intervals();
    let levels = quantizer.num_levels();
    let minutes = period as f64 / 60.0;

    let per_machine: Vec<Vec<Vec<f64>>> = trace
        .machines
        .par_iter()
        .map(|m| {
            let timeline = QueueTimeline::for_machine(trace, m.id);
            let series = timeline.running_series(trace.horizon, period);
            let quantized: Vec<usize> = series
                .iter()
                .map(|&c| quantizer.quantize_count(c))
                .collect();
            durations_by_level(&quantized, minutes, levels)
        })
        .collect();

    let intervals = (0..levels)
        .map(|level| {
            let durations: Vec<f64> = per_machine
                .iter()
                .flat_map(|m| m[level].iter().copied())
                .collect();
            IntervalRow {
                label: quantizer.label(level),
                runs: durations.len(),
                duration_minutes: Summary::of(&durations),
                masscount: MassCount::new(durations).map(|mc| mc.summary()),
            }
        })
        .collect();

    QueueRunLengths { period, intervals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgc_trace::task::{TaskEvent, TaskEventKind};
    use cgc_trace::{Demand, MachineId, Priority, TraceBuilder, UserId};

    /// One machine alternating between 0 and 12 running tasks.
    fn bursty_trace() -> Trace {
        let mut b = TraceBuilder::new("t", 4_000);
        b.add_machine(1.0, 1.0, 1.0);
        let j = b.add_job(UserId(0), Priority::from_level(3), 0);
        // 12 tasks run [600, 1800); then 12 more run [2400, 3600).
        for burst in 0..2u64 {
            let start = 600 + burst * 1_800;
            for _ in 0..12 {
                let t = b.add_task(j, Demand::new(0.01, 0.01));
                b.push_event(TaskEvent {
                    time: start - 10,
                    task: t,
                    machine: None,
                    kind: TaskEventKind::Submit,
                });
                b.push_event(TaskEvent {
                    time: start,
                    task: t,
                    machine: Some(MachineId(0)),
                    kind: TaskEventKind::Schedule,
                });
                b.push_event(TaskEvent {
                    time: start + 1_200,
                    task: t,
                    machine: Some(MachineId(0)),
                    kind: TaskEventKind::Finish,
                });
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn intervals_capture_alternation() {
        let r = queue_runlengths(&bursty_trace(), 60);
        assert_eq!(r.intervals.len(), 6);
        let zero = &r.intervals[0]; // [0,9]
        let ten = &r.intervals[1]; // [10,19]
                                   // Three spells at level 0 (before, between, after) and two at
                                   // level 1 (the bursts).
        assert_eq!(zero.runs, 3);
        assert_eq!(ten.runs, 2);
        // Burst spells last 20 minutes each.
        assert!((ten.duration_minutes.mean - 20.0).abs() < 2.0);
        // Intervals above [10,19] never occur.
        assert_eq!(r.intervals[4].runs, 0);
        assert!(r.intervals[4].masscount.is_none());
    }

    #[test]
    fn empty_trace_yields_empty_rows() {
        let trace = TraceBuilder::new("t", 1_000).build().unwrap();
        let r = queue_runlengths(&trace, 60);
        assert!(r.intervals.iter().all(|row| row.runs == 0));
    }

    #[test]
    fn labels_match_paper() {
        let r = queue_runlengths(&bursty_trace(), 60);
        assert_eq!(r.intervals[0].label, "[0,9]");
        assert_eq!(r.intervals[5].label, "[50,...]");
    }

    #[test]
    fn reference_form_is_bit_identical() {
        let trace = bursty_trace();
        assert_eq!(
            queue_runlengths_reference(&trace, 60),
            queue_runlengths(&trace, 60)
        );
        let empty = TraceBuilder::new("t", 1_000).build().unwrap();
        assert_eq!(
            queue_runlengths_reference(&empty, 60),
            queue_runlengths(&empty, 60)
        );
    }

    #[test]
    fn masscount_durations_in_minutes() {
        let r = queue_runlengths(&bursty_trace(), 60);
        let mc = r.intervals[1].masscount.as_ref().unwrap();
        // Two equal 20-minute runs: medians at 20 minutes.
        assert!((mc.count_median - 20.0).abs() < 2.0);
    }
}
