//! The analysis-pass framework: one shared sweep, many accumulators.
//!
//! Every analysis in [`crate::report::characterize`] used to be an
//! independent function-per-figure scan over the whole [`Trace`]. This
//! module inverts that: an [`AnalysisPass`] *observes* records as a
//! driver sweeps them once (`observe_job` / `observe_task` /
//! `observe_event` / `observe_sample`), then turns its accumulator into
//! a report section in [`finish`](AnalysisPass::finish). Two drivers
//! share the same registry of passes:
//!
//! * the in-memory driver in [`crate::report`] sweeps a materialized
//!   trace (host-load passes additionally get a whole-trace
//!   [`run_full`](AnalysisPass::run_full) over a shared [`TraceView`]);
//! * the out-of-core driver in [`crate::stream`] feeds record batches
//!   from [`cgc_trace::TraceBatches`] without ever materializing the
//!   trace.
//!
//! Workload passes accumulate either exactly (bit-identical to the
//! per-figure scans) or — behind the explicit `approx` flag — in bounded
//! memory via [`StreamingSummary`] moments plus a [`Reservoir`] sample.

use crate::hostload::{
    max_load, queue_runlengths, queue_runlengths_reference, usage_masscount,
    usage_masscount_from_view, usage_masscount_from_view_reference, usage_masscount_reference,
    HostComparison, LevelRunTable, MaxLoadDistribution, QueueRunLengths, UsageMassCount,
};
use crate::report::{HostloadSection, WorkloadSection};
use crate::view::TraceView;
use crate::workload::{
    JobLengthAnalysis, PriorityHistogram, ResubmissionAnalysis, SubmissionAnalysis,
    TaskLengthAnalysis,
};
use cgc_stats::{Reservoir, StreamingSummary, Summary};
use cgc_trace::usage::{UsageAttribute, UsageSample};
use cgc_trace::{JobRecord, MachineId, PriorityClass, TaskEvent, TaskRecord};

/// Histogram resolution of the Fig. 7 reproduction.
pub(crate) const MAX_LOAD_BINS: usize = 25;

/// Sampling period for the Fig. 9 queue-state series, in seconds.
pub(crate) const QUEUE_SAMPLE_PERIOD: u64 = 60;

/// Reference machine-memory capacity (GB) for the Fig. 6(b) summary.
pub(crate) const MEMORY_REFERENCE_GB: f64 = 32.0;

/// Reservoir capacity per approximate accumulator: large enough that
/// medians and mass–count shapes are stable, small enough that a full
/// workload registry stays in the low megabytes.
pub(crate) const APPROX_SAMPLE: usize = 1 << 16;

/// One analysis over a trace, driven record-by-record.
///
/// The driver calls the `observe_*` hooks for every record (in file
/// order), then [`finish`](Self::finish) exactly once. Host-load passes,
/// which need whole per-machine series rather than a record stream,
/// implement [`run_full`](Self::run_full) instead and report
/// [`streamable`](Self::streamable)` == false`.
pub trait AnalysisPass: Send {
    /// The `cgc_obs::stages` name this pass reports under.
    fn stage(&self) -> &'static str;

    /// Whether the pass can run from a record stream alone. Host-load
    /// passes return `false` and only work with [`run_full`](Self::run_full).
    fn streamable(&self) -> bool {
        true
    }

    /// Observes one job record.
    fn observe_job(&mut self, _job: &JobRecord) {}

    /// Observes one task record.
    fn observe_task(&mut self, _task: &TaskRecord) {}

    /// Observes one task event. Events arrive after the task they
    /// reference (the trace format guarantees it).
    fn observe_event(&mut self, _event: &TaskEvent) {}

    /// Observes one host usage sample.
    fn observe_sample(&mut self, _machine: MachineId, _sample: &UsageSample) {}

    /// Whole-trace computation for passes that cannot stream; the
    /// in-memory driver calls it once with the shared view.
    fn run_full(&mut self, _view: &TraceView<'_>) {}

    /// Approximate heap footprint of the accumulator, for the streaming
    /// driver's peak-memory metric.
    fn accumulator_bytes(&self) -> usize {
        0
    }

    /// Consumes the accumulator and produces the pass's report section.
    fn finish(self: Box<Self>, ctx: &PassContext) -> PassOutput;
}

/// Trace-level facts every pass may need at finish time.
#[derive(Debug, Clone)]
pub struct PassContext {
    /// System label of the analyzed trace.
    pub system: String,
    /// Trace horizon in seconds.
    pub horizon: u64,
}

/// What a pass produced; the assembly functions route each variant into
/// its report slot.
#[derive(Debug)]
pub enum PassOutput {
    /// Fig. 2 histograms.
    Priorities(PriorityHistogram),
    /// Fig. 3.
    JobLength(Option<JobLengthAnalysis>),
    /// Fig. 5 + Table I.
    Submission(Option<SubmissionAnalysis>),
    /// Fig. 4 + §VI quantiles.
    TaskLength(Option<TaskLengthAnalysis>),
    /// Fig. 6(a) summary.
    CpuUsage(Option<Summary>),
    /// Fig. 6(b) summary.
    Memory(Option<Summary>),
    /// §IV.B.1 completion mix.
    Resubmission(Option<ResubmissionAnalysis>),
    /// Fig. 7, all four attributes.
    MaxLoads(Vec<MaxLoadDistribution>),
    /// Fig. 9.
    QueueRuns(QueueRunLengths),
    /// Table II/III (routed by the table's attribute).
    LevelRuns(LevelRunTable),
    /// Figs. 11/12 (routed by attribute and priority view, which must be
    /// carried here because `result` is `None` for all-zero usage).
    MassCount {
        /// The attribute analyzed.
        attribute: UsageAttribute,
        /// `None` for all tasks, `Some` for the high-priority view.
        min_class: Option<PriorityClass>,
        /// The analysis, if the trace had any usage mass.
        result: Option<UsageMassCount>,
    },
    /// Fig. 13 headline numbers.
    Comparison(Option<HostComparison>),
}

/// Value accumulator of the workload passes: an exact growing vector, or
/// bounded-memory moments plus a reservoir sample when `approx` is on.
#[derive(Debug)]
pub(crate) enum ValueAcc {
    Exact(Vec<f64>),
    Approx {
        moments: StreamingSummary,
        sample: Reservoir,
    },
}

/// A [`ValueAcc`] opened up for finish-math.
pub(crate) enum ResolvedValues {
    Exact(Vec<f64>),
    Approx {
        moments: StreamingSummary,
        sample: Vec<f64>,
    },
}

impl ValueAcc {
    pub(crate) fn new(approx: bool) -> Self {
        if approx {
            ValueAcc::Approx {
                moments: StreamingSummary::new(),
                sample: Reservoir::new(APPROX_SAMPLE),
            }
        } else {
            ValueAcc::Exact(Vec::new())
        }
    }

    pub(crate) fn push(&mut self, v: f64) {
        match self {
            ValueAcc::Exact(values) => values.push(v),
            ValueAcc::Approx { moments, sample } => {
                moments.push(v);
                sample.push(v);
            }
        }
    }

    /// Heap bytes held by the accumulator.
    pub(crate) fn bytes(&self) -> usize {
        let values = match self {
            ValueAcc::Exact(values) => values.len(),
            ValueAcc::Approx { sample, .. } => sample.len(),
        };
        values * std::mem::size_of::<f64>()
    }

    pub(crate) fn resolve(self) -> ResolvedValues {
        match self {
            ValueAcc::Exact(values) => ResolvedValues::Exact(values),
            ValueAcc::Approx { moments, sample } => ResolvedValues::Approx {
                moments,
                sample: sample.values().to_vec(),
            },
        }
    }
}

/// Merges exact streaming moments into a sample-derived summary: every
/// scalar the moments track exactly (count/min/max/mean/std) replaces
/// its sample estimate; the median — unavailable without the sample —
/// stays sample-based.
pub(crate) fn approx_summary(sample_summary: &Summary, moments: &StreamingSummary) -> Summary {
    let mut s = moments.summary();
    s.median = sample_summary.median;
    s
}

/// Runs `f` under an observability span, so per-pass durations land in
/// the metrics snapshot even on rayon worker threads. `parent` is the id
/// of the logical enclosing span (the characterize/stream root): rayon
/// forks break the thread-local span stack, so the hierarchy is carried
/// explicitly and trace exports still show passes nested under their
/// driver.
pub(crate) fn spanned<T>(stage: &'static str, parent: Option<u64>, f: impl FnOnce() -> T) -> T {
    let _span = cgc_obs::span_under(stage, parent);
    f()
}

/// The workload registry: every Section III pass, in report order.
///
/// With `approx` off, finished sections are bit-identical to the
/// function-per-figure analyses; with it on, value accumulators are
/// bounded and distribution shapes come from reservoir samples.
pub fn workload_passes(approx: bool) -> Vec<Box<dyn AnalysisPass>> {
    use crate::workload::{
        job_length::JobLengthPass,
        priority::PriorityPass,
        resubmission::ResubmissionPass,
        submission::SubmissionPass,
        task_length::TaskLengthPass,
        utilization::{CpuUsagePass, MemoryPass},
    };
    vec![
        Box::new(PriorityPass::default()),
        Box::new(JobLengthPass::new(approx)),
        Box::new(SubmissionPass::default()),
        Box::new(TaskLengthPass::new(approx)),
        Box::new(CpuUsagePass::new(approx)),
        Box::new(MemoryPass::new(MEMORY_REFERENCE_GB, approx)),
        Box::new(ResubmissionPass::new(approx)),
    ]
}

/// The host-load registry: every Section IV pass, in report order. None
/// of these stream; the in-memory driver runs them over a shared
/// [`TraceView`].
pub fn hostload_passes() -> Vec<Box<dyn AnalysisPass>> {
    hostload_passes_with(false)
}

/// The host-load registry with every pass in its pre-optimization
/// (reference) form: per-machine queue replay, per-lag autocorrelation,
/// two-sort row summaries. Bit-identical output to [`hostload_passes`] —
/// this is the analysis half of the benchmark's seed-equivalent baseline
/// and a whole-report differential oracle.
pub fn hostload_passes_reference() -> Vec<Box<dyn AnalysisPass>> {
    hostload_passes_with(true)
}

fn hostload_passes_with(reference: bool) -> Vec<Box<dyn AnalysisPass>> {
    let mut passes: Vec<Box<dyn AnalysisPass>> = vec![
        Box::new(MaxLoadsPass::default()),
        Box::new(QueueRunsPass::new(reference)),
        Box::new(LevelRunsPass::new(UsageAttribute::Cpu, reference)),
        Box::new(LevelRunsPass::new(UsageAttribute::MemoryUsed, reference)),
    ];
    for attr in [UsageAttribute::Cpu, UsageAttribute::MemoryUsed] {
        passes.push(Box::new(MassCountPass::new(attr, None, reference)));
        passes.push(Box::new(MassCountPass::new(
            attr,
            Some(PriorityClass::Middle),
            reference,
        )));
    }
    passes.push(Box::new(ComparisonPass::new(reference)));
    passes
}

/// Feeds one chunk of records — a whole trace or one stream batch — to
/// every pass, in record order.
pub fn observe_records(
    passes: &mut [Box<dyn AnalysisPass>],
    jobs: &[JobRecord],
    tasks: &[TaskRecord],
    events: &[TaskEvent],
) {
    for job in jobs {
        for pass in passes.iter_mut() {
            pass.observe_job(job);
        }
    }
    for task in tasks {
        for pass in passes.iter_mut() {
            pass.observe_task(task);
        }
    }
    for event in events {
        for pass in passes.iter_mut() {
            pass.observe_event(event);
        }
    }
}

/// Finishes a workload registry into the report section, spanning each
/// pass's finish under its stage name (parented to `parent`, the
/// driver's root span, so exported span trees stay connected across
/// rayon threads).
///
/// # Panics
/// If `passes` is not a full workload registry (every slot must be
/// produced exactly once).
pub fn finish_workload(
    passes: Vec<Box<dyn AnalysisPass>>,
    ctx: &PassContext,
    parent: Option<u64>,
) -> WorkloadSection {
    let mut priorities = None;
    let mut job_length = None;
    let mut submission = None;
    let mut task_length = None;
    let mut cpu_usage = None;
    let mut memory = None;
    let mut resubmission = None;
    for pass in passes {
        let stage = pass.stage();
        match spanned(stage, parent, || pass.finish(ctx)) {
            PassOutput::Priorities(h) => priorities = Some(h),
            PassOutput::JobLength(a) => job_length = Some(a),
            PassOutput::Submission(a) => submission = Some(a),
            PassOutput::TaskLength(a) => task_length = Some(a),
            PassOutput::CpuUsage(s) => cpu_usage = Some(s),
            PassOutput::Memory(s) => memory = Some(s),
            PassOutput::Resubmission(a) => resubmission = Some(a),
            other => panic!("host-load output {other:?} in a workload registry"),
        }
    }
    WorkloadSection {
        priorities: priorities.expect("registry provides a priorities pass"),
        job_length: job_length.expect("registry provides a job-length pass"),
        submission: submission.expect("registry provides a submission pass"),
        task_length: task_length.expect("registry provides a task-length pass"),
        cpu_usage: cpu_usage.expect("registry provides a cpu-usage pass"),
        memory_mb_at_32gb: memory.expect("registry provides a memory pass"),
        resubmission: resubmission.expect("registry provides a resubmission pass"),
    }
}

/// Runs the host-load registry over a shared view — `run_full`s forked
/// onto the rayon pool — and assembles the report section.
pub(crate) fn run_hostload(
    view: &TraceView<'_>,
    ctx: &PassContext,
    parent: Option<u64>,
    reference: bool,
) -> HostloadSection {
    let mut passes = hostload_passes_with(reference);
    run_full_parallel(&mut passes, view, parent);

    let mut max_loads = None;
    let mut queue_runs = None;
    let mut cpu_level_runs = None;
    let mut memory_level_runs = None;
    let mut cpu_masscount = None;
    let mut cpu_masscount_high = None;
    let mut memory_masscount = None;
    let mut memory_masscount_high = None;
    let mut comparison = None;
    for pass in passes {
        match pass.finish(ctx) {
            PassOutput::MaxLoads(v) => max_loads = Some(v),
            PassOutput::QueueRuns(q) => queue_runs = Some(q),
            PassOutput::LevelRuns(t) => match t.attribute {
                UsageAttribute::Cpu => cpu_level_runs = Some(t),
                _ => memory_level_runs = Some(t),
            },
            PassOutput::MassCount {
                attribute,
                min_class,
                result,
            } => match (attribute, min_class) {
                (UsageAttribute::Cpu, None) => cpu_masscount = Some(result),
                (UsageAttribute::Cpu, Some(_)) => cpu_masscount_high = Some(result),
                (_, None) => memory_masscount = Some(result),
                (_, Some(_)) => memory_masscount_high = Some(result),
            },
            PassOutput::Comparison(c) => comparison = Some(c),
            other => panic!("workload output {other:?} in a host-load registry"),
        }
    }
    HostloadSection {
        max_loads: max_loads.expect("registry provides a max-loads pass"),
        queue_runs: queue_runs.expect("registry provides a queue-runs pass"),
        cpu_level_runs: cpu_level_runs.expect("registry provides a CPU level-runs pass"),
        memory_level_runs: memory_level_runs.expect("registry provides a memory level-runs pass"),
        cpu_masscount: cpu_masscount.expect("registry provides a CPU mass-count pass"),
        cpu_masscount_high: cpu_masscount_high.expect("registry provides the high-priority view"),
        memory_masscount: memory_masscount.expect("registry provides a memory mass-count pass"),
        memory_masscount_high: memory_masscount_high
            .expect("registry provides the high-priority view"),
        comparison: comparison.expect("registry provides a comparison pass"),
    }
}

/// Forks `run_full` calls pairwise onto the rayon pool, each under its
/// pass's span. Output slots are disjoint, so the result is
/// deterministic regardless of thread count.
fn run_full_parallel(
    passes: &mut [Box<dyn AnalysisPass>],
    view: &TraceView<'_>,
    parent: Option<u64>,
) {
    match passes {
        [] => {}
        [pass] => spanned(pass.stage(), parent, || pass.run_full(view)),
        _ => {
            let (a, b) = passes.split_at_mut(passes.len() / 2);
            rayon::join(
                || run_full_parallel(a, view, parent),
                || run_full_parallel(b, view, parent),
            );
        }
    }
}

/// Fig. 7 over all four attributes.
#[derive(Default)]
struct MaxLoadsPass {
    out: Vec<MaxLoadDistribution>,
}

impl AnalysisPass for MaxLoadsPass {
    fn stage(&self) -> &'static str {
        cgc_obs::stages::A_MAX_LOADS
    }

    fn streamable(&self) -> bool {
        false
    }

    fn run_full(&mut self, view: &TraceView<'_>) {
        self.out = UsageAttribute::ALL
            .iter()
            .map(|&attr| max_load::max_load_from_view(view, attr, MAX_LOAD_BINS))
            .collect();
    }

    fn finish(self: Box<Self>, _ctx: &PassContext) -> PassOutput {
        PassOutput::MaxLoads(self.out)
    }
}

/// Fig. 9.
struct QueueRunsPass {
    reference: bool,
    out: Option<QueueRunLengths>,
}

impl QueueRunsPass {
    fn new(reference: bool) -> Self {
        QueueRunsPass {
            reference,
            out: None,
        }
    }
}

impl AnalysisPass for QueueRunsPass {
    fn stage(&self) -> &'static str {
        cgc_obs::stages::A_QUEUE_RUNS
    }

    fn streamable(&self) -> bool {
        false
    }

    fn run_full(&mut self, view: &TraceView<'_>) {
        self.out = Some(if self.reference {
            queue_runlengths_reference(view.trace(), QUEUE_SAMPLE_PERIOD)
        } else {
            queue_runlengths(view.trace(), QUEUE_SAMPLE_PERIOD)
        });
    }

    fn finish(self: Box<Self>, _ctx: &PassContext) -> PassOutput {
        PassOutput::QueueRuns(self.out.expect("run_full executes before finish"))
    }
}

/// Table II/III for one attribute (all tasks).
struct LevelRunsPass {
    attr: UsageAttribute,
    reference: bool,
    out: Option<LevelRunTable>,
}

impl LevelRunsPass {
    fn new(attr: UsageAttribute, reference: bool) -> Self {
        LevelRunsPass {
            attr,
            reference,
            out: None,
        }
    }
}

impl AnalysisPass for LevelRunsPass {
    fn stage(&self) -> &'static str {
        cgc_obs::stages::A_LEVEL_RUNS
    }

    fn streamable(&self) -> bool {
        false
    }

    fn run_full(&mut self, view: &TraceView<'_>) {
        use crate::hostload::usage_levels;
        self.out = Some(if self.reference {
            usage_levels::usage_level_runs_from_view_reference(view, self.attr)
        } else {
            usage_levels::usage_level_runs_from_view(view, self.attr)
        });
    }

    fn finish(self: Box<Self>, _ctx: &PassContext) -> PassOutput {
        PassOutput::LevelRuns(self.out.expect("run_full executes before finish"))
    }
}

/// Figs. 11/12 for one attribute and priority view.
struct MassCountPass {
    attr: UsageAttribute,
    min_class: Option<PriorityClass>,
    reference: bool,
    out: Option<UsageMassCount>,
}

impl MassCountPass {
    fn new(attr: UsageAttribute, min_class: Option<PriorityClass>, reference: bool) -> Self {
        MassCountPass {
            attr,
            min_class,
            reference,
            out: None,
        }
    }
}

impl AnalysisPass for MassCountPass {
    fn stage(&self) -> &'static str {
        cgc_obs::stages::A_MASSCOUNT
    }

    fn streamable(&self) -> bool {
        false
    }

    fn run_full(&mut self, view: &TraceView<'_>) {
        // The all-tasks views share the cached attribute extraction; the
        // per-class views need a different sample split, which only the
        // trace itself can provide.
        self.out = match (self.min_class, self.reference) {
            (None, false) => usage_masscount_from_view(view, self.attr),
            (None, true) => usage_masscount_from_view_reference(view, self.attr),
            (Some(_), false) => usage_masscount(view.trace(), self.attr, self.min_class),
            (Some(_), true) => usage_masscount_reference(view.trace(), self.attr, self.min_class),
        };
    }

    fn finish(self: Box<Self>, _ctx: &PassContext) -> PassOutput {
        PassOutput::MassCount {
            attribute: self.attr,
            min_class: self.min_class,
            result: self.out,
        }
    }
}

/// Fig. 13.
struct ComparisonPass {
    reference: bool,
    out: Option<HostComparison>,
}

impl ComparisonPass {
    fn new(reference: bool) -> Self {
        ComparisonPass {
            reference,
            out: None,
        }
    }
}

impl AnalysisPass for ComparisonPass {
    fn stage(&self) -> &'static str {
        cgc_obs::stages::A_COMPARISON
    }

    fn streamable(&self) -> bool {
        false
    }

    fn run_full(&mut self, view: &TraceView<'_>) {
        self.out = if self.reference {
            crate::hostload::host_comparison_reference(view.trace(), 0)
        } else {
            crate::hostload::host_comparison(view.trace(), 0)
        };
    }

    fn finish(self: Box<Self>, _ctx: &PassContext) -> PassOutput {
        PassOutput::Comparison(self.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registries_cover_their_sections() {
        assert_eq!(workload_passes(false).len(), 7);
        assert!(workload_passes(false).iter().all(|p| p.streamable()));
        assert_eq!(hostload_passes().len(), 9);
        assert!(hostload_passes().iter().all(|p| !p.streamable()));
        assert_eq!(hostload_passes_reference().len(), 9);
        assert!(hostload_passes_reference().iter().all(|p| !p.streamable()));
    }

    #[test]
    fn exact_value_acc_keeps_everything() {
        let mut acc = ValueAcc::new(false);
        for v in [3.0, 1.0, 2.0] {
            acc.push(v);
        }
        assert_eq!(acc.bytes(), 3 * 8);
        match acc.resolve() {
            ResolvedValues::Exact(values) => assert_eq!(values, vec![3.0, 1.0, 2.0]),
            ResolvedValues::Approx { .. } => panic!("exact accumulator resolved as approx"),
        }
    }

    #[test]
    fn approx_value_acc_is_bounded() {
        let mut acc = ValueAcc::new(true);
        for i in 0..(APPROX_SAMPLE + 100) {
            acc.push(i as f64);
        }
        assert!(acc.bytes() <= APPROX_SAMPLE * 8);
        match acc.resolve() {
            ResolvedValues::Approx { moments, sample } => {
                assert_eq!(moments.count(), (APPROX_SAMPLE + 100) as u64);
                assert_eq!(sample.len(), APPROX_SAMPLE);
            }
            ResolvedValues::Exact(_) => panic!("approx accumulator resolved as exact"),
        }
    }

    #[test]
    fn approx_summary_prefers_exact_moments() {
        let mut moments = StreamingSummary::new();
        for v in [1.0, 2.0, 3.0, 10.0] {
            moments.push(v);
        }
        let sample = Summary::of(&[1.0, 3.0]);
        let s = approx_summary(&sample, &moments);
        assert_eq!(s.count, 4);
        assert_eq!(s.max, 10.0);
        assert_eq!(s.median, sample.median);
    }
}
